// Package obs provides the repository's observability primitives: atomic
// counters, fixed-bucket histograms, a named-metric registry with an
// expvar-style text endpoint, and a per-request event hook interface for
// HTTP components. Everything is stdlib-only and safe for concurrent use,
// and the recording paths (Counter.Add, Histogram.Observe) perform no heap
// allocations, so instrumentation can ride on hot paths.
//
// The package is deliberately dependency-free in both directions: it knows
// nothing about the simulator or the idICN daemons. internal/sim builds its
// Observer implementation on these types, and cmd/idicnd wires them into
// its proxy/resolver/origin handlers and /debug/metrics endpoint.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// writeText emits the counter in the registry's text format.
func (c *Counter) writeText(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, c.Value())
}

// funcVar is a lazily evaluated gauge backed by a callback.
type funcVar func() int64

func (f funcVar) writeText(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %d\n", name, f())
}

// metric is anything the registry can render on the text endpoint.
type metric interface {
	writeText(w io.Writer, name string)
}

// Registry holds named metrics and renders them as a plain-text page, one
// `name value` line per scalar and a count/sum/bucket group per histogram —
// the expvar-style /debug/metrics surface of cmd/idicnd.
type Registry struct {
	mu sync.Mutex
	//icn:guardedby mu
	names []string // registration order
	//icn:guardedby mu
	vars map[string]metric
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]metric)}
}

// register adds a metric under name, panicking on duplicates: metric names
// are wired once at startup, so a collision is a programming error.
func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.vars[name]; ok {
		panic("obs: duplicate metric " + name)
	}
	r.names = append(r.names, name)
	r.vars[name] = m
}

// Counter registers and returns a new counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(name, c)
	return c
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (see NewHistogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, h)
	return h
}

// Func registers a gauge evaluated at render time — the bridge for
// components that already keep their own counters (cache sizes, hit
// totals).
func (r *Registry) Func(name string, fn func() int64) {
	r.register(name, funcVar(fn))
}

// RegisterHistogram exposes an existing histogram under name — the bridge
// for components (like the overload controller) that must own their
// histogram so they can read quantiles from it directly, registry or not.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.register(name, h)
}

// WriteText renders every metric in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	vars := make([]metric, len(names))
	for i, n := range names {
		vars[i] = r.vars[n]
	}
	r.mu.Unlock()
	for i, n := range names {
		vars[i].writeText(w, n)
	}
}

// Handler returns an http.Handler serving the text rendering, suitable for
// mounting at /debug/metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

// Histogram is a fixed-bucket histogram with atomic recording: Observe is
// lock-free and allocation-free. Bucket i counts observations v <= bounds[i]
// (after earlier buckets); one implicit overflow bucket counts everything
// above the last bound.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after construction
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
}

// NewHistogram builds a histogram from ascending bucket upper bounds. It
// panics on empty or unsorted bounds — bucket layouts are static
// configuration, not data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// LinearBuckets returns n bounds: start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExpBuckets returns n bounds growing geometrically from start by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is a general-purpose latency layout in seconds: 100µs to
// ~52s, doubling.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 20) }

// SizeBuckets is a general-purpose payload-size layout in bytes: 256B to
// 2GiB, quadrupling.
func SizeBuckets() []float64 { return ExpBuckets(256, 4, 12) }

// Observe records one value. It is safe for concurrent use and performs no
// heap allocation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the slice is short enough that
	// this beats branching heuristics and stays branch-predictable.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// BucketCount is one rendered histogram bucket: the count of observations
// at or below LE (cumulative, Prometheus-style). The final bucket has
// LE = +Inf.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the bucket bound the way Prometheus text format does:
// finite bounds as numbers, the overflow bucket as the string "+Inf"
// (encoding/json rejects non-finite floats outright).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	le := "\"+Inf\""
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(`{"le":` + le + `,"count":` + strconv.FormatInt(b.Count, 10) + `}`), nil
}

// Snapshot is a point-in-time copy of a histogram, JSON-marshalable for the
// -metrics-json output.
type Snapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot returns the histogram's current state with cumulative bucket
// counts. Min and Max are 0 when the histogram is empty.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.load(),
		Buckets: make([]BucketCount, len(h.buckets)),
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: le, Count: cum}
	}
	if s.Count > 0 {
		s.Min = h.min.load()
		s.Max = h.max.load()
	}
	return s
}

// Mean returns the mean observed value, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.load() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts,
// attributing each bucket's mass to its upper bound — a conservative
// (over-) estimate. It returns 0 for an empty histogram and Max for the
// overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	for _, b := range s.Buckets {
		if b.Count >= rank {
			if math.IsInf(b.LE, 1) {
				return s.Max
			}
			return b.LE
		}
	}
	return s.Max
}

// writeText renders the histogram as count/sum/cumulative-bucket lines.
func (h *Histogram) writeText(w io.Writer, name string) {
	s := h.Snapshot()
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
	for _, b := range s.Buckets {
		if math.IsInf(b.LE, 1) {
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, b.Count)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b.LE, b.Count)
		}
	}
}

// atomicFloat is a float64 with CAS-based add/min/max, stored as bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SortedNames returns the registry's metric names, sorted — a convenience
// for tests and debug dumps.
func (r *Registry) SortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}
