package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestInstrumentEmitsEvent(t *testing.T) {
	var got RequestEvent
	hook := HookFunc(func(ev RequestEvent) { got = ev })
	h := Instrument("proxy", hook, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("X-Cache", "HIT")
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("hello"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/content/welcome", nil))

	if got.Component != "proxy" || got.Method != http.MethodGet || got.Path != "/content/welcome" {
		t.Fatalf("event identity = %+v", got)
	}
	if got.Status != http.StatusTeapot || got.Bytes != 5 || got.Cache != "HIT" {
		t.Fatalf("event payload = %+v", got)
	}
	if got.Duration < 0 {
		t.Fatalf("negative duration %v", got.Duration)
	}
}

func TestInstrumentDefaultsStatus200(t *testing.T) {
	var got RequestEvent
	h := Instrument("origin", HookFunc(func(ev RequestEvent) { got = ev }),
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("ok")) }))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if got.Status != http.StatusOK {
		t.Fatalf("implicit status = %d, want 200", got.Status)
	}
}

func TestInstrumentNilHookPassthrough(t *testing.T) {
	base := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	if got := Instrument("x", nil, base); got == nil {
		t.Fatal("nil hook returned nil handler")
	}
}

func TestHTTPMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "proxy")
	m.ObserveRequest(RequestEvent{Status: 200, Bytes: 10, Duration: time.Millisecond, Cache: "HIT"})
	m.ObserveRequest(RequestEvent{Status: 502, Bytes: 4, Duration: time.Second, Cache: "MISS"})
	m.ObserveRequest(RequestEvent{Status: 200, Bytes: 1, Duration: time.Millisecond, Cache: "PEER"})

	if m.Requests.Value() != 3 || m.Errors.Value() != 1 || m.Bytes.Value() != 15 {
		t.Fatalf("requests/errors/bytes = %d/%d/%d", m.Requests.Value(), m.Errors.Value(), m.Bytes.Value())
	}
	if m.Hits.Value() != 2 || m.Misses.Value() != 1 {
		t.Fatalf("hits/misses = %d/%d", m.Hits.Value(), m.Misses.Value())
	}
	if m.Latency.Snapshot().Count != 3 {
		t.Fatalf("latency count = %d", m.Latency.Snapshot().Count)
	}
}

func TestRequestLogger(t *testing.T) {
	var b strings.Builder
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	l := NewRequestLogger(&b, func() time.Time { return now })
	l.ObserveRequest(RequestEvent{
		Component: "resolver", Method: "GET", Path: "/resolve",
		Status: 200, Bytes: 64, Duration: 1500 * time.Microsecond, Cache: "",
	})
	line := b.String()
	for _, want := range []string{
		"ts=2026-08-06T12:00:00Z", "component=resolver", "method=GET",
		`path="/resolve"`, "status=200", "bytes=64", "dur=1.5ms",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "cache=") {
		t.Errorf("empty cache state leaked into line: %s", line)
	}
}

func TestMultiHookSkipsNil(t *testing.T) {
	n := 0
	hook := MultiHook(nil, HookFunc(func(RequestEvent) { n++ }), nil, HookFunc(func(RequestEvent) { n++ }))
	hook.ObserveRequest(RequestEvent{})
	if n != 2 {
		t.Fatalf("fanout reached %d hooks, want 2", n)
	}
}
