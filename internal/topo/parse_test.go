package topo

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sampleTopo = `# a tiny ISP
name TinyNet
pop 0 Alpha 2.5
pop 1 Beta 1.0
pop 2 Gamma 4.25
link 0 1
link 1 2
`

func TestParseTopology(t *testing.T) {
	tp, err := ParseTopology(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name != "TinyNet" || tp.Graph.N() != 3 || tp.Graph.EdgeCount() != 2 {
		t.Fatalf("parsed %s: %d pops %d links", tp.Name, tp.Graph.N(), tp.Graph.EdgeCount())
	}
	if tp.PoPNames[2] != "Gamma" || tp.Population[2] != 4.25 {
		t.Errorf("pop 2 = %s/%v", tp.PoPNames[2], tp.Population[2])
	}
	if !tp.Graph.HasEdge(0, 1) || !tp.Graph.HasEdge(1, 2) || tp.Graph.HasEdge(0, 2) {
		t.Error("edges wrong")
	}
}

func TestParseTopologyErrors(t *testing.T) {
	for name, text := range map[string]string{
		"unknown directive": "router 0\n",
		"pop fields":        "pop 0 OnlyName\n",
		"pop order":         "pop 1 B 1\n",
		"bad population":    "pop 0 A x\n",
		"zero population":   "pop 0 A 0\n",
		"bad link":          "pop 0 A 1\npop 1 B 1\nlink 0 x\n",
		"undeclared link":   "pop 0 A 1\nlink 0 5\n",
		"empty":             "# nothing\n",
		"disconnected":      "pop 0 A 1\npop 1 B 1\n",
		"duplicate link":    "pop 0 A 1\npop 1 B 1\nlink 0 1\nlink 1 0\n",
	} {
		if _, err := ParseTopology(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTopologyFileRoundTrip(t *testing.T) {
	for _, orig := range []*Topology{Abilene(), Geant(), Sprint()} {
		var buf bytes.Buffer
		if err := WriteTopology(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := ParseTopology(&buf)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if back.Name != orig.Name || back.Graph.N() != orig.Graph.N() || back.Graph.EdgeCount() != orig.Graph.EdgeCount() {
			t.Fatalf("%s: round trip changed shape", orig.Name)
		}
		for i := range orig.PoPNames {
			if back.PoPNames[i] != orig.PoPNames[i] || back.Population[i] != orig.Population[i] {
				t.Fatalf("%s: pop %d changed", orig.Name, i)
			}
		}
		eo, eb := orig.Graph.Edges(), back.Graph.Edges()
		for i := range eo {
			if eo[i] != eb[i] {
				t.Fatalf("%s: edge %d changed", orig.Name, i)
			}
		}
	}
}

func TestLoadTopologyFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.topo"
	if err := writeFile(path, sampleTopo); err != nil {
		t.Fatal(err)
	}
	tp, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Name != "TinyNet" {
		t.Errorf("loaded %s", tp.Name)
	}
	if _, err := LoadTopology(dir + "/missing.topo"); err == nil {
		t.Error("missing file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
