package topo

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTopology ensures the topology parser never panics and accepted
// topologies survive a write/parse round trip.
func FuzzParseTopology(f *testing.F) {
	f.Add(sampleTopo)
	f.Add("")
	f.Add("pop 0 A 1\npop 1 B 2\nlink 0 1\nlink 0 1\n")
	f.Add("name x\npop 0 a 0.0001\n")
	f.Fuzz(func(t *testing.T, s string) {
		tp, err := ParseTopology(strings.NewReader(s))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTopology(&buf, tp); err != nil {
			t.Fatalf("write failed for accepted topology: %v", err)
		}
		back, err := ParseTopology(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if back.Graph.N() != tp.Graph.N() || back.Graph.EdgeCount() != tp.Graph.EdgeCount() {
			t.Fatal("round trip changed shape")
		}
	})
}
