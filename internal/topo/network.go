package topo

import "fmt"

// Network is the router-level simulation topology: a PoP-level backbone in
// which every PoP is the root of a complete k-ary access tree of the given
// depth (paper §4.1). Requests arrive at tree leaves; PoP roots double as
// origin servers for the objects they own.
//
// Node addressing: every router has a NodeID = pop*TreeSize() + local, where
// local is the heap index of the node within its access tree (local 0 is the
// tree root, which *is* the PoP's core router). Heap indexing makes parent,
// child, depth and LCA computations pure arithmetic with no allocation.
type Network struct {
	Topo  *Topology
	Arity int
	Depth int

	paths      *Paths
	treeSize   int32
	leafStart  int32
	leaves     int32
	levelStart []int32 // levelStart[d] = local index of first node at depth d
	depthOf    []int8  // local index -> depth
}

// NodeID identifies a router in a Network.
type NodeID int32

// NewNetwork builds the router-level network for a validated topology.
// It panics if arity < 2, depth < 1, or the topology fails validation, since
// these are construction-time programmer errors.
func NewNetwork(t *Topology, arity, depth int) *Network {
	if arity < 2 {
		panic("topo: access tree arity must be >= 2")
	}
	if depth < 1 {
		panic("topo: access tree depth must be >= 1")
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	levelStart := make([]int32, depth+2)
	size := int32(0)
	width := int32(1)
	for d := 0; d <= depth; d++ {
		levelStart[d] = size
		size += width
		width *= int32(arity)
	}
	levelStart[depth+1] = size
	depthOf := make([]int8, size)
	for d := 0; d <= depth; d++ {
		for i := levelStart[d]; i < levelStart[d+1]; i++ {
			depthOf[i] = int8(d)
		}
	}
	return &Network{
		Topo:       t,
		Arity:      arity,
		Depth:      depth,
		paths:      t.Graph.AllPairsShortestPaths(),
		treeSize:   size,
		leafStart:  levelStart[depth],
		leaves:     size - levelStart[depth],
		levelStart: levelStart,
		depthOf:    depthOf,
	}
}

// PoPs returns the number of PoPs.
func (n *Network) PoPs() int { return n.Topo.Graph.N() }

// TreeSize returns the number of routers per access tree, root included.
func (n *Network) TreeSize() int { return int(n.treeSize) }

// LeavesPerTree returns the number of leaves per access tree.
func (n *Network) LeavesPerTree() int { return int(n.leaves) }

// NodeCount returns the total number of routers (PoP roots included once).
func (n *Network) NodeCount() int { return n.PoPs() * int(n.treeSize) }

// Node returns the NodeID for a (pop, local) pair.
func (n *Network) Node(pop int, local int32) NodeID {
	return NodeID(int32(pop)*n.treeSize + local)
}

// Split decomposes a NodeID into its (pop, local) pair.
func (n *Network) Split(id NodeID) (pop int, local int32) {
	return int(int32(id) / n.treeSize), int32(id) % n.treeSize
}

// Leaf returns the NodeID of the i-th leaf (0-based) of pop's access tree.
func (n *Network) Leaf(pop, i int) NodeID {
	if i < 0 || int32(i) >= n.leaves {
		panic(fmt.Sprintf("topo: leaf index %d out of range (leaves per tree: %d)", i, n.leaves))
	}
	return n.Node(pop, n.leafStart+int32(i))
}

// LeafStart returns the local index of the first leaf.
func (n *Network) LeafStart() int32 { return n.leafStart }

// Parent returns the local index of local's parent; the root has no parent
// and Parent(0) is -1.
func (n *Network) Parent(local int32) int32 {
	if local == 0 {
		return -1
	}
	return (local - 1) / int32(n.Arity)
}

// FirstChild returns the local index of local's first child, or -1 for
// leaves.
func (n *Network) FirstChild(local int32) int32 {
	c := local*int32(n.Arity) + 1
	if c >= n.treeSize {
		return -1
	}
	return c
}

// DepthOf returns the tree depth of a local index (root is 0).
func (n *Network) DepthOf(local int32) int { return int(n.depthOf[local]) }

// LevelStart returns the local index of the first node at depth d.
func (n *Network) LevelStart(d int) int32 { return n.levelStart[d] }

// LevelEnd returns one past the local index of the last node at depth d.
func (n *Network) LevelEnd(d int) int32 { return n.levelStart[d+1] }

// IsLeaf reports whether the local index is a leaf.
func (n *Network) IsLeaf(local int32) bool { return local >= n.leafStart }

// Siblings appends to dst the local indices of local's siblings (same
// parent, excluding local itself) and returns the extended slice. The root
// has no siblings.
func (n *Network) Siblings(dst []int32, local int32) []int32 {
	if local == 0 {
		return dst
	}
	parent := n.Parent(local)
	first := parent*int32(n.Arity) + 1
	for c := first; c < first+int32(n.Arity); c++ {
		if c != local && c < n.treeSize {
			dst = append(dst, c)
		}
	}
	return dst
}

// SameTreeDist returns the hop distance between two local indices within one
// access tree, via the lowest common ancestor.
func (n *Network) SameTreeDist(a, b int32) int {
	d := 0
	for a != b {
		da, db := n.depthOf[a], n.depthOf[b]
		switch {
		case da > db:
			a = n.Parent(a)
		case db > da:
			b = n.Parent(b)
		default:
			a = n.Parent(a)
			b = n.Parent(b)
			d++ // the two parent steps collapse below; count both
		}
		d++
	}
	return d
}

// CoreDist returns the hop distance between two PoPs across the backbone.
func (n *Network) CoreDist(p, q int) int { return n.paths.Dist(p, q) }

// CoreNextHop returns the next PoP on a shortest backbone path from p to q.
func (n *Network) CoreNextHop(p, q int) int { return n.paths.NextHop(p, q) }

// CorePath returns the PoP sequence of a shortest backbone path.
func (n *Network) CorePath(p, q int) []int32 { return n.paths.Path(p, q) }

// Dist returns the hop distance between two arbitrary routers: tree distance
// when they share a tree, otherwise up to the local root, across the core,
// and down the remote tree.
func (n *Network) Dist(a, b NodeID) int {
	ap, al := n.Split(a)
	bp, bl := n.Split(b)
	if ap == bp {
		return n.SameTreeDist(al, bl)
	}
	return int(n.depthOf[al]) + n.CoreDist(ap, bp) + int(n.depthOf[bl])
}

// TreeLinks returns the number of access-tree links in the whole network
// (one per non-root tree node).
func (n *Network) TreeLinks() int { return n.PoPs() * (int(n.treeSize) - 1) }

// TreeLinkIndex returns the dense index of the link from (pop, local) to its
// parent, for congestion accounting. local must not be the root.
func (n *Network) TreeLinkIndex(pop int, local int32) int {
	return pop*(int(n.treeSize)-1) + int(local) - 1
}

// CoreLinks returns the number of backbone links.
func (n *Network) CoreLinks() int { return n.Topo.Graph.EdgeCount() }

// CoreLinkIndex returns the dense index of the backbone link {p, q}.
// It panics if the link does not exist, which indicates a routing bug.
func (n *Network) CoreLinkIndex(p, q int) int {
	i, ok := n.Topo.Graph.EdgeIndex(int32(p), int32(q))
	if !ok {
		panic(fmt.Sprintf("topo: no core link between PoPs %d and %d", p, q))
	}
	return i
}
