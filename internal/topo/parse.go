package topo

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Topology file format: a line-oriented text description so users can
// supply their own PoP-level maps (e.g., parsed from real Rocketfuel data,
// which is not redistributable here):
//
//	# comment
//	name AS7018
//	pop 0 NewYork 19.8
//	pop 1 Chicago 9.5
//	link 0 1
//
// "pop" lines declare nodes with an id (dense, 0-based), a name, and a
// population; "link" lines declare undirected edges between declared ids.

// ParseTopology reads a topology description.
func ParseTopology(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)

	name := "custom"
	type popDecl struct {
		name string
		pop  float64
	}
	var pops []popDecl
	var links [][2]int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "name":
			if len(fields) != 2 {
				return nil, fmt.Errorf("topo: line %d: name wants 1 argument", lineNo)
			}
			name = fields[1]
		case "pop":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topo: line %d: pop wants id, name, population", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: bad pop id: %v", lineNo, err)
			}
			if id != len(pops) {
				return nil, fmt.Errorf("topo: line %d: pop id %d out of order (want %d)", lineNo, id, len(pops))
			}
			population, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: bad population: %v", lineNo, err)
			}
			if population <= 0 {
				return nil, fmt.Errorf("topo: line %d: population must be positive", lineNo)
			}
			pops = append(pops, popDecl{name: fields[2], pop: population})
		case "link":
			if len(fields) != 3 {
				return nil, fmt.Errorf("topo: line %d: link wants two pop ids", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: bad link endpoint: %v", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("topo: line %d: bad link endpoint: %v", lineNo, err)
			}
			links = append(links, [2]int{u, v})
		default:
			return nil, fmt.Errorf("topo: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topo: read: %w", err)
	}
	if len(pops) == 0 {
		return nil, fmt.Errorf("topo: no pops declared")
	}

	g := NewGraph(len(pops))
	for i, l := range links {
		if l[0] < 0 || l[0] >= len(pops) || l[1] < 0 || l[1] >= len(pops) {
			return nil, fmt.Errorf("topo: link %d references undeclared pop (%d, %d)", i, l[0], l[1])
		}
		if err := g.AddEdge(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	t := &Topology{Name: name, Graph: g}
	for _, p := range pops {
		t.PoPNames = append(t.PoPNames, p.name)
		t.Population = append(t.Population, p.pop)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// LoadTopology reads a topology description from a file.
func LoadTopology(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	defer f.Close()
	t, err := ParseTopology(f)
	if err != nil {
		return nil, fmt.Errorf("topo: %s: %w", path, err)
	}
	return t, nil
}

// WriteTopology renders a topology in the file format, round-trippable
// through ParseTopology.
func WriteTopology(w io.Writer, t *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "name %s\n", t.Name)
	for i, n := range t.PoPNames {
		fmt.Fprintf(bw, "pop %d %s %g\n", i, n, t.Population[i])
	}
	for _, e := range t.Graph.Edges() {
		fmt.Fprintf(bw, "link %d %d\n", e[0], e[1])
	}
	return bw.Flush()
}
