// Package topo provides the network substrate for the simulation study:
// undirected PoP-level graphs with all-pairs shortest paths, the eight
// backbone topologies the paper evaluates (Abilene, Geant, and six
// Rocketfuel ISPs), and the router-level Network model that roots a complete
// k-ary access tree at every PoP (paper §4.1, Figure 5).
package topo

import "fmt"

// Graph is a simple undirected graph over nodes 0..N-1. Nodes are added at
// construction; edges with AddEdge. Graph is not safe for concurrent
// mutation, but read-only use (after Freeze or once fully built) is.
type Graph struct {
	n     int
	adj   [][]int32
	edges [][2]int32       // canonical (u < v), in insertion order
	eidx  map[[2]int32]int // canonical edge -> index in edges
}

// NewGraph returns an empty graph with n nodes. It panics if n <= 0.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic("topo: non-positive node count")
	}
	return &Graph{
		n:    n,
		adj:  make([][]int32, n),
		eidx: make(map[[2]int32]int),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate edges
// are rejected with an error; out-of-range endpoints panic (programmer
// error).
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("topo: edge endpoint out of range: (%d,%d) with n=%d", u, v, g.n))
	}
	if u == v {
		return fmt.Errorf("topo: self-loop at node %d", u)
	}
	key := canonEdge(int32(u), int32(v))
	if _, dup := g.eidx[key]; dup {
		return fmt.Errorf("topo: duplicate edge (%d,%d)", u, v)
	}
	g.eidx[key] = len(g.edges)
	g.edges = append(g.edges, key)
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	return nil
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, ok := g.eidx[canonEdge(int32(u), int32(v))]
	return ok
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Edges returns the edge list in insertion order, each as canonical (u, v)
// with u < v. The returned slice must not be modified.
func (g *Graph) Edges() [][2]int32 { return g.edges }

// EdgeIndex returns the dense index of edge {u, v}, used by the simulator
// for per-link congestion accounting, and whether the edge exists.
func (g *Graph) EdgeIndex(u, v int32) (int, bool) {
	i, ok := g.eidx[canonEdge(u, v)]
	return i, ok
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns u's adjacency list. The returned slice must not be
// modified.
func (g *Graph) Neighbors(u int) []int32 { return g.adj[u] }

// Connected reports whether the graph is connected (true for N == 1).
func (g *Graph) Connected() bool {
	seen := make([]bool, g.n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

func canonEdge(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// Paths holds all-pairs shortest-path results for a Graph: hop distances and
// first-hop routing tables. Paths are computed with breadth-first search
// using deterministic (adjacency-order) tie-breaking, so routes are stable
// across runs.
type Paths struct {
	n    int
	dist []int32 // n*n, -1 if unreachable
	next []int32 // n*n, first hop from u toward v; -1 if unreachable or u==v
}

// AllPairsShortestPaths computes hop distances and next-hop tables between
// every pair of nodes via one BFS per source.
func (g *Graph) AllPairsShortestPaths() *Paths {
	p := &Paths{
		n:    g.n,
		dist: make([]int32, g.n*g.n),
		next: make([]int32, g.n*g.n),
	}
	for i := range p.dist {
		p.dist[i] = -1
		p.next[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for src := 0; src < g.n; src++ {
		base := src * g.n
		p.dist[base+src] = 0
		queue = queue[:0]
		queue = append(queue, int32(src))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			du := p.dist[base+int(u)]
			for _, v := range g.adj[u] {
				if p.dist[base+int(v)] >= 0 {
					continue
				}
				p.dist[base+int(v)] = du + 1
				if u == int32(src) {
					p.next[base+int(v)] = v
				} else {
					p.next[base+int(v)] = p.next[base+int(u)]
				}
				queue = append(queue, v)
			}
		}
	}
	return p
}

// Dist returns the hop distance from u to v, or -1 if unreachable.
func (p *Paths) Dist(u, v int) int { return int(p.dist[u*p.n+v]) }

// NextHop returns the first hop on a shortest path from u toward v, or -1
// when v is unreachable or equal to u.
func (p *Paths) NextHop(u, v int) int { return int(p.next[u*p.n+v]) }

// Path returns the node sequence of a shortest path from u to v, inclusive
// of both endpoints, or nil if v is unreachable from u.
func (p *Paths) Path(u, v int) []int32 {
	if u == v {
		return []int32{int32(u)}
	}
	if p.dist[u*p.n+v] < 0 {
		return nil
	}
	out := make([]int32, 0, p.dist[u*p.n+v]+1)
	out = append(out, int32(u))
	for u != v {
		u = int(p.next[u*p.n+v])
		out = append(out, int32(u))
	}
	return out
}

// Eccentricity returns the maximum shortest-path distance from u to any
// reachable node.
func (p *Paths) Eccentricity(u int) int {
	m := 0
	for v := 0; v < p.n; v++ {
		if d := int(p.dist[u*p.n+v]); d > m {
			m = d
		}
	}
	return m
}
