package topo

// This file embeds the eight backbone topologies the paper evaluates
// (Figure 6): the Abilene and Geant research networks, whose PoP-level maps
// are public and embedded directly, and six commercial ISPs measured by
// Rocketfuel (Telstra, Sprint, Verio, Tiscali, Level3, AT&T), for which we
// generate deterministic synthetic maps sized to the published PoP counts —
// see DESIGN.md "Substitutions". AT&T is the largest, matching the paper's
// use of it for the sensitivity analysis (§5).

// Abilene returns the Abilene (Internet2) backbone: 11 PoPs, 14 links.
// Populations are the approximate metro populations in millions.
func Abilene() *Topology {
	names := []string{
		"Seattle", "Sunnyvale", "LosAngeles", "Denver", "KansasCity",
		"Houston", "Indianapolis", "Atlanta", "Chicago", "NewYork", "WashingtonDC",
	}
	pop := []float64{3.5, 1.8, 13.2, 2.9, 2.1, 6.6, 2.0, 5.9, 9.5, 19.8, 6.1}
	g := NewGraph(len(names))
	edges := [][2]int{
		{0, 1},  // Seattle-Sunnyvale
		{0, 3},  // Seattle-Denver
		{1, 2},  // Sunnyvale-LosAngeles
		{1, 3},  // Sunnyvale-Denver
		{2, 5},  // LosAngeles-Houston
		{3, 4},  // Denver-KansasCity
		{4, 5},  // KansasCity-Houston
		{4, 6},  // KansasCity-Indianapolis
		{5, 7},  // Houston-Atlanta
		{6, 8},  // Indianapolis-Chicago
		{6, 7},  // Indianapolis-Atlanta
		{7, 10}, // Atlanta-WashingtonDC
		{8, 9},  // Chicago-NewYork
		{9, 10}, // NewYork-WashingtonDC
	}
	for _, e := range edges {
		mustAddEdge(g, e[0], e[1])
	}
	return &Topology{Name: "Abilene", Graph: g, PoPNames: names, Population: pop}
}

// Geant returns an approximation of the GEANT pan-European research backbone
// circa the paper's era: 22 national PoPs with a mesh concentrated on the
// western European hubs. Populations are national populations in millions.
func Geant() *Topology {
	names := []string{
		"UK", "France", "Germany", "Netherlands", "Belgium", "Switzerland",
		"Italy", "Spain", "Portugal", "Austria", "CzechRep", "Poland",
		"Hungary", "Slovakia", "Slovenia", "Croatia", "Greece", "Ireland",
		"Sweden", "Denmark", "Norway", "Finland",
	}
	pop := []float64{
		63.0, 65.0, 82.0, 16.7, 11.1, 8.0,
		60.0, 46.0, 10.5, 8.4, 10.5, 38.5,
		9.9, 5.4, 2.1, 4.3, 11.0, 4.6,
		9.5, 5.6, 5.0, 5.4,
	}
	g := NewGraph(len(names))
	edges := [][2]int{
		{0, 1}, {0, 3}, {0, 17}, {0, 18}, // UK: FR, NL, IE, SE
		{1, 2}, {1, 5}, {1, 7}, // FR: DE, CH, ES
		{2, 3}, {2, 5}, {2, 9}, {2, 10}, {2, 19}, // DE: NL, CH, AT, CZ, DK
		{3, 4},           // NL-BE
		{4, 1},           // BE-FR
		{5, 6},           // CH-IT
		{6, 9},           // IT-AT
		{6, 16},          // IT-GR
		{7, 8},           // ES-PT
		{9, 12}, {9, 14}, // AT: HU, SI
		{10, 11}, {10, 13}, // CZ: PL, SK
		{11, 19},           // PL-DK
		{12, 13}, {12, 15}, // HU: SK, HR
		{14, 15},                     // SI-HR
		{16, 9},                      // GR-AT
		{18, 19}, {18, 20}, {18, 21}, // SE: DK, NO, FI
	}
	for _, e := range edges {
		mustAddEdge(g, e[0], e[1])
	}
	return &Topology{Name: "Geant", Graph: g, PoPNames: names, Population: pop}
}

// The six Rocketfuel ISPs, sized to the published PoP counts. Seeds are
// fixed so every run sees identical topologies.

// Telstra returns the synthetic Telstra (AS1221) PoP-level map.
func Telstra() *Topology { return synthISP("Telstra", 44, 1221) }

// Sprint returns the synthetic Sprint (AS1239) PoP-level map.
func Sprint() *Topology { return synthISP("Sprint", 52, 1239) }

// Verio returns the synthetic Verio (AS2914) PoP-level map.
func Verio() *Topology { return synthISP("Verio", 70, 2914) }

// Tiscali returns the synthetic Tiscali (AS3257) PoP-level map.
func Tiscali() *Topology { return synthISP("Tiscali", 50, 3257) }

// Level3 returns the synthetic Level3 (AS3356) PoP-level map.
func Level3() *Topology { return synthISP("Level3", 63, 3356) }

// ATT returns the synthetic AT&T (AS7018) PoP-level map, the largest of the
// eight and the one the paper uses for its sensitivity analysis.
func ATT() *Topology { return synthISP("ATT", 108, 7018) }

// AllTopologies returns the eight topologies in the order of the paper's
// Figure 6 x-axis: Abilene, Geant, Telstra, Sprint, Verio, Tiscali, Level3,
// ATT.
func AllTopologies() []*Topology {
	return []*Topology{
		Abilene(), Geant(), Telstra(), Sprint(),
		Verio(), Tiscali(), Level3(), ATT(),
	}
}

// ByName returns the named topology (case-sensitive, as listed in
// AllTopologies) or nil if unknown.
func ByName(name string) *Topology {
	switch name {
	case "Abilene":
		return Abilene()
	case "Geant":
		return Geant()
	case "Telstra":
		return Telstra()
	case "Sprint":
		return Sprint()
	case "Verio":
		return Verio()
	case "Tiscali":
		return Tiscali()
	case "Level3":
		return Level3()
	case "ATT":
		return ATT()
	}
	return nil
}
