package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if !g.HasEdge(2, 1) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2", g.EdgeCount())
	}
	if g.Connected() { // node 3 isolated
		t.Fatal("disconnected graph reported connected")
	}
	mustAddEdge(g, 2, 3)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestEdgeIndexCanonical(t *testing.T) {
	g := NewGraph(3)
	mustAddEdge(g, 2, 0)
	i1, ok1 := g.EdgeIndex(0, 2)
	i2, ok2 := g.EdgeIndex(2, 0)
	if !ok1 || !ok2 || i1 != i2 {
		t.Fatalf("EdgeIndex not canonical: (%d,%v) vs (%d,%v)", i1, ok1, i2, ok2)
	}
	if _, ok := g.EdgeIndex(0, 1); ok {
		t.Fatal("EdgeIndex found missing edge")
	}
}

func TestShortestPathsOnLine(t *testing.T) {
	// 0-1-2-3
	g := NewGraph(4)
	mustAddEdge(g, 0, 1)
	mustAddEdge(g, 1, 2)
	mustAddEdge(g, 2, 3)
	p := g.AllPairsShortestPaths()
	if d := p.Dist(0, 3); d != 3 {
		t.Fatalf("Dist(0,3) = %d, want 3", d)
	}
	if nh := p.NextHop(0, 3); nh != 1 {
		t.Fatalf("NextHop(0,3) = %d, want 1", nh)
	}
	path := p.Path(0, 3)
	want := []int32{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("Path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("Path = %v, want %v", path, want)
		}
	}
	if got := p.Path(2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Path(2,2) = %v", got)
	}
	if p.Eccentricity(0) != 3 || p.Eccentricity(1) != 2 {
		t.Fatal("Eccentricity wrong")
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := NewGraph(3)
	mustAddEdge(g, 0, 1)
	p := g.AllPairsShortestPaths()
	if p.Dist(0, 2) != -1 || p.NextHop(0, 2) != -1 || p.Path(0, 2) != nil {
		t.Fatal("unreachable node not reported as -1/nil")
	}
}

// Property: on random connected graphs, BFS distances satisfy the triangle
// inequality and symmetry, and every returned path has the claimed length
// with consecutive nodes adjacent.
func TestShortestPathsPropertiesQuick(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%20) + 3
		r := rand.New(rand.NewSource(seed))
		g := NewGraph(n)
		for i := 1; i < n; i++ {
			mustAddEdge(g, i, r.Intn(i)) // random spanning tree
		}
		for k := 0; k < n/2; k++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				mustAddEdge(g, u, v)
			}
		}
		p := g.AllPairsShortestPaths()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				d := p.Dist(u, v)
				if d != p.Dist(v, u) {
					return false
				}
				for w := 0; w < n; w++ {
					if p.Dist(u, w) > d+p.Dist(v, w) {
						return false
					}
				}
				path := p.Path(u, v)
				if len(path) != d+1 {
					return false
				}
				for i := 1; i < len(path); i++ {
					if !g.HasEdge(int(path[i-1]), int(path[i])) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAllTopologiesValid(t *testing.T) {
	tops := AllTopologies()
	if len(tops) != 8 {
		t.Fatalf("got %d topologies, want 8", len(tops))
	}
	wantNames := []string{"Abilene", "Geant", "Telstra", "Sprint", "Verio", "Tiscali", "Level3", "ATT"}
	largest := ""
	largestN := 0
	for i, tp := range tops {
		if tp.Name != wantNames[i] {
			t.Errorf("topology %d: name %q, want %q", i, tp.Name, wantNames[i])
		}
		if err := tp.Validate(); err != nil {
			t.Errorf("%s: %v", tp.Name, err)
		}
		if tp.Graph.N() > largestN {
			largestN, largest = tp.Graph.N(), tp.Name
		}
	}
	if largest != "ATT" {
		t.Errorf("largest topology is %s, want ATT (as in the paper)", largest)
	}
}

func TestAbileneShape(t *testing.T) {
	a := Abilene()
	if a.Graph.N() != 11 || a.Graph.EdgeCount() != 14 {
		t.Fatalf("Abilene: %d nodes / %d edges, want 11/14", a.Graph.N(), a.Graph.EdgeCount())
	}
	p := a.Graph.AllPairsShortestPaths()
	// Seattle (0) to Atlanta (7) is 4 hops on the real backbone
	// (Seattle-Denver-KansasCity-Houston-Atlanta or via Indianapolis).
	if d := p.Dist(0, 7); d != 4 {
		t.Errorf("Seattle->Atlanta = %d hops, want 4", d)
	}
}

func TestSynthISPDeterministic(t *testing.T) {
	a, b := Sprint(), Sprint()
	if a.Graph.N() != b.Graph.N() || a.Graph.EdgeCount() != b.Graph.EdgeCount() {
		t.Fatal("Sprint not deterministic in size")
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("Sprint edge lists differ between constructions")
		}
	}
	for i := range a.Population {
		if a.Population[i] != b.Population[i] {
			t.Fatal("Sprint populations differ between constructions")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Abilene", "Geant", "Telstra", "Sprint", "Verio", "Tiscali", "Level3", "ATT"} {
		tp := ByName(name)
		if tp == nil || tp.Name != name {
			t.Errorf("ByName(%q) = %v", name, tp)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
}

func TestPopulationWeights(t *testing.T) {
	tp := Abilene()
	w := tp.PopulationWeights()
	sum := 0.0
	for _, x := range w {
		if x <= 0 {
			t.Fatal("non-positive weight")
		}
		sum += x
	}
	if sum < 0.999999 || sum > 1.000001 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	g := NewGraph(2)
	mustAddEdge(g, 0, 1)
	bad := &Topology{Name: "bad", Graph: g, PoPNames: []string{"a"}, Population: []float64{1, 1}}
	if bad.Validate() == nil {
		t.Error("short PoPNames accepted")
	}
	bad2 := &Topology{Name: "bad2", Graph: g, PoPNames: []string{"a", "b"}, Population: []float64{1, 0}}
	if bad2.Validate() == nil {
		t.Error("zero population accepted")
	}
	g3 := NewGraph(2)
	bad3 := &Topology{Name: "bad3", Graph: g3, PoPNames: []string{"a", "b"}, Population: []float64{1, 1}}
	if bad3.Validate() == nil {
		t.Error("disconnected graph accepted")
	}
}

func newTestNetwork(t testing.TB, arity, depth int) *Network {
	t.Helper()
	return NewNetwork(Abilene(), arity, depth)
}

func TestNetworkSizes(t *testing.T) {
	n := newTestNetwork(t, 2, 5)
	if n.TreeSize() != 63 {
		t.Fatalf("TreeSize = %d, want 63", n.TreeSize())
	}
	if n.LeavesPerTree() != 32 {
		t.Fatalf("LeavesPerTree = %d, want 32", n.LeavesPerTree())
	}
	if n.NodeCount() != 11*63 {
		t.Fatalf("NodeCount = %d, want %d", n.NodeCount(), 11*63)
	}
	if n.TreeLinks() != 11*62 {
		t.Fatalf("TreeLinks = %d", n.TreeLinks())
	}
	n3 := newTestNetwork(t, 4, 3)
	if n3.TreeSize() != 1+4+16+64 {
		t.Fatalf("arity-4 TreeSize = %d, want 85", n3.TreeSize())
	}
	if n3.LeavesPerTree() != 64 {
		t.Fatalf("arity-4 leaves = %d, want 64", n3.LeavesPerTree())
	}
}

func TestNodeSplitRoundTrip(t *testing.T) {
	n := newTestNetwork(t, 2, 4)
	for pop := 0; pop < n.PoPs(); pop++ {
		for local := int32(0); local < int32(n.TreeSize()); local++ {
			id := n.Node(pop, local)
			gp, gl := n.Split(id)
			if gp != pop || gl != local {
				t.Fatalf("Split(Node(%d,%d)) = (%d,%d)", pop, local, gp, gl)
			}
		}
	}
}

func TestParentChildDepth(t *testing.T) {
	n := newTestNetwork(t, 2, 3)
	if n.Parent(0) != -1 {
		t.Fatal("root has a parent")
	}
	if n.Parent(1) != 0 || n.Parent(2) != 0 {
		t.Fatal("children of root wrong")
	}
	if n.FirstChild(0) != 1 {
		t.Fatal("FirstChild(0) != 1")
	}
	leaf := n.LeafStart()
	if n.FirstChild(leaf) != -1 {
		t.Fatal("leaf has a child")
	}
	if n.DepthOf(0) != 0 || n.DepthOf(leaf) != 3 {
		t.Fatal("DepthOf wrong")
	}
	if !n.IsLeaf(leaf) || n.IsLeaf(0) {
		t.Fatal("IsLeaf wrong")
	}
	if n.LevelStart(1) != 1 || n.LevelEnd(1) != 3 || n.LevelStart(3) != 7 || n.LevelEnd(3) != 15 {
		t.Fatal("LevelStart/End wrong")
	}
}

func TestSiblings(t *testing.T) {
	n2 := newTestNetwork(t, 2, 3)
	sib := n2.Siblings(nil, 1)
	if len(sib) != 1 || sib[0] != 2 {
		t.Fatalf("Siblings(1) = %v, want [2]", sib)
	}
	if got := n2.Siblings(nil, 0); len(got) != 0 {
		t.Fatalf("root Siblings = %v", got)
	}
	n4 := NewNetwork(Abilene(), 4, 2)
	sib4 := n4.Siblings(nil, 2)
	if len(sib4) != 3 {
		t.Fatalf("arity-4 Siblings(2) = %v", sib4)
	}
	for _, s := range sib4 {
		if s == 2 || n4.Parent(s) != 0 {
			t.Fatalf("bad sibling %d", s)
		}
	}
}

// Property: parent/child identities hold for random arity/depth/node.
func TestTreeAddressingQuick(t *testing.T) {
	f := func(aRaw, dRaw uint8, lRaw uint16) bool {
		arity := int(aRaw%7) + 2 // 2..8
		depth := int(dRaw%4) + 1 // 1..4
		n := NewNetwork(Abilene(), arity, depth)
		local := int32(lRaw) % int32(n.TreeSize())
		if local == 0 {
			return n.Parent(0) == -1 && n.DepthOf(0) == 0
		}
		p := n.Parent(local)
		if n.DepthOf(p) != n.DepthOf(local)-1 {
			return false
		}
		// local must be within p's child range.
		first := p*int32(arity) + 1
		if local < first || local >= first+int32(arity) {
			return false
		}
		// Walking up DepthOf(local) times must reach the root.
		x := local
		for i := 0; i < n.DepthOf(local); i++ {
			x = n.Parent(x)
		}
		return x == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSameTreeDist(t *testing.T) {
	n := newTestNetwork(t, 2, 3)
	cases := []struct {
		a, b int32
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 2, 2},  // siblings
		{7, 8, 2},  // sibling leaves
		{7, 9, 4},  // cousins via depth-1 ancestor
		{7, 14, 6}, // opposite corners
		{7, 3, 1},  // leaf to parent
		{7, 0, 3},  // leaf to root
		{3, 4, 2},  // internal siblings
		{7, 4, 3},  // leaf to uncle
	}
	for _, c := range cases {
		if got := n.SameTreeDist(c.a, c.b); got != c.want {
			t.Errorf("SameTreeDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := n.SameTreeDist(c.b, c.a); got != c.want {
			t.Errorf("SameTreeDist(%d,%d) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

// Property: SameTreeDist matches the naive ancestor-walk distance.
func TestSameTreeDistQuick(t *testing.T) {
	n := NewNetwork(Abilene(), 3, 4)
	naive := func(a, b int32) int {
		// Collect a's ancestors with depths.
		anc := map[int32]int{}
		d := 0
		for x := a; ; x = n.Parent(x) {
			anc[x] = d
			if x == 0 {
				break
			}
			d++
		}
		d = 0
		for x := b; ; x = n.Parent(x) {
			if up, ok := anc[x]; ok {
				return up + d
			}
			if x == 0 {
				break
			}
			d++
		}
		return -1
	}
	f := func(aRaw, bRaw uint16) bool {
		a := int32(aRaw) % int32(n.TreeSize())
		b := int32(bRaw) % int32(n.TreeSize())
		return n.SameTreeDist(a, b) == naive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCrossTreeDist(t *testing.T) {
	n := newTestNetwork(t, 2, 2) // tree size 7, leaves 3..6
	// Abilene Seattle(0)-Sunnyvale(1) are adjacent.
	a := n.Leaf(0, 0) // depth 2
	b := n.Leaf(1, 0)
	if got, want := n.Dist(a, b), 2+1+2; got != want {
		t.Fatalf("cross-tree Dist = %d, want %d", got, want)
	}
	// Same tree goes through LCA, not the core.
	if got := n.Dist(a, n.Leaf(0, 1)); got != 2 {
		t.Fatalf("sibling-leaf Dist = %d, want 2", got)
	}
	// Root to remote root is the pure core distance.
	if got := n.Dist(n.Node(0, 0), n.Node(1, 0)); got != 1 {
		t.Fatalf("root-root Dist = %d, want 1", got)
	}
}

func TestLinkIndicesDisjoint(t *testing.T) {
	n := newTestNetwork(t, 2, 3)
	seen := map[int]bool{}
	for pop := 0; pop < n.PoPs(); pop++ {
		for local := int32(1); local < int32(n.TreeSize()); local++ {
			idx := n.TreeLinkIndex(pop, local)
			if idx < 0 || idx >= n.TreeLinks() {
				t.Fatalf("TreeLinkIndex out of range: %d", idx)
			}
			if seen[idx] {
				t.Fatalf("duplicate tree link index %d", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != n.TreeLinks() {
		t.Fatalf("covered %d tree links, want %d", len(seen), n.TreeLinks())
	}
}

func TestCoreLinkIndex(t *testing.T) {
	n := newTestNetwork(t, 2, 2)
	if i := n.CoreLinkIndex(0, 1); i < 0 || i >= n.CoreLinks() {
		t.Fatalf("CoreLinkIndex(0,1) = %d", i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CoreLinkIndex on a non-edge did not panic")
		}
	}()
	n.CoreLinkIndex(0, 7) // Seattle-Atlanta: not adjacent
}

func TestNewNetworkPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"arity": func() { NewNetwork(Abilene(), 1, 3) },
		"depth": func() { NewNetwork(Abilene(), 2, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		})
	}
}

func BenchmarkAllPairsShortestPathsATT(b *testing.B) {
	tp := ATT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.Graph.AllPairsShortestPaths()
	}
}

func BenchmarkSameTreeDist(b *testing.B) {
	n := NewNetwork(Abilene(), 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SameTreeDist(int32(31+i%32), int32(31+(i*7)%32))
	}
}
