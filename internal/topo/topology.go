package topo

import (
	"fmt"
	"math/rand"
)

// Topology is a named PoP-level backbone: a connected graph whose nodes are
// points of presence, each annotated with the population of its metro region.
// Request volume and origin-server assignment are proportional to population
// in the paper's setup (§4.1).
type Topology struct {
	Name       string
	Graph      *Graph
	PoPNames   []string
	Population []float64 // per PoP, in millions (any consistent unit works)
}

// Validate checks structural invariants: matching slice lengths, a connected
// graph, and strictly positive populations.
func (t *Topology) Validate() error {
	n := t.Graph.N()
	if len(t.PoPNames) != n {
		return fmt.Errorf("topo: %s: %d PoP names for %d nodes", t.Name, len(t.PoPNames), n)
	}
	if len(t.Population) != n {
		return fmt.Errorf("topo: %s: %d populations for %d nodes", t.Name, len(t.Population), n)
	}
	for i, p := range t.Population {
		if p <= 0 {
			return fmt.Errorf("topo: %s: non-positive population %v at PoP %d (%s)", t.Name, p, i, t.PoPNames[i])
		}
	}
	if !t.Graph.Connected() {
		return fmt.Errorf("topo: %s: graph is not connected", t.Name)
	}
	return nil
}

// TotalPopulation returns the sum of PoP populations.
func (t *Topology) TotalPopulation() float64 {
	var s float64
	for _, p := range t.Population {
		s += p
	}
	return s
}

// PopulationWeights returns per-PoP populations normalized to sum to 1.
func (t *Topology) PopulationWeights() []float64 {
	total := t.TotalPopulation()
	w := make([]float64, len(t.Population))
	for i, p := range t.Population {
		w[i] = p / total
	}
	return w
}

// synthISP generates a deterministic synthetic PoP-level ISP map with n
// PoPs. The paper uses Rocketfuel-measured PoP topologies, which are not
// redistributable here; this generator preserves the properties that matter
// for the study — size diversity across ISPs, a sparse mesh with a few
// high-degree hubs (preferential attachment), ring-like redundancy, and
// heavy-tailed metro populations. The same (name, n, seed) always yields the
// same topology.
func synthISP(name string, n int, seed int64) *Topology {
	r := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	// Preferential-attachment spanning tree: node i attaches to an earlier
	// node chosen with probability proportional to degree+1.
	for i := 1; i < n; i++ {
		total := 0
		for j := 0; j < i; j++ {
			total += g.Degree(j) + 1
		}
		pick := r.Intn(total)
		target := 0
		for j := 0; j < i; j++ {
			pick -= g.Degree(j) + 1
			if pick < 0 {
				target = j
				break
			}
		}
		mustAddEdge(g, i, target)
	}
	// Redundancy: add ~n/2 extra shortcut edges between random pairs,
	// skipping duplicates, to bring the mean degree near Rocketfuel's ~3.
	extra := n / 2
	for added := 0; added < extra; {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustAddEdge(g, u, v)
		added++
	}
	// Heavy-tailed metro populations (Zipf-like city sizes), shuffled so the
	// biggest metro is not always PoP 0.
	pops := make([]float64, n)
	for i := range pops {
		pops[i] = 20.0 / float64(i+1)
		if pops[i] < 0.3 {
			pops[i] = 0.3
		}
	}
	r.Shuffle(n, func(i, j int) { pops[i], pops[j] = pops[j], pops[i] })
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s-pop%02d", name, i)
	}
	return &Topology{Name: name, Graph: g, PoPNames: names, Population: pops}
}

func mustAddEdge(g *Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}
