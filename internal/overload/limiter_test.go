package overload

import (
	"testing"
	"time"
)

// feedWindow pushes one full adaptation window of identical samples.
func feedWindow(l *Limiter, d time.Duration) {
	for i := 0; i < l.cfg.Window; i++ {
		l.Observe(d)
	}
}

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	if got := l.Limit(); got != 16 {
		t.Fatalf("default initial limit = %d, want 16", got)
	}
	if l.Fixed() {
		t.Fatal("default limiter reports fixed")
	}
}

// TestLimiterAdditiveIncrease: stable latencies grow the limit by one per
// window up to Max. The trajectory is exact — no clock, no RNG.
func TestLimiterAdditiveIncrease(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4, Max: 8, Window: 4})
	for i, want := range []int{5, 6, 7, 8, 8} {
		feedWindow(l, time.Millisecond)
		if got := l.Limit(); got != want {
			t.Fatalf("after window %d: limit = %d, want %d", i+1, got, want)
		}
	}
}

// TestLimiterMultiplicativeDecrease: a window whose latency floor exceeds
// Tolerance x baseline cuts the limit by Backoff, down to Min.
func TestLimiterMultiplicativeDecrease(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 10, Min: 2, Max: 64, Window: 4, Tolerance: 2, Backoff: 0.5})
	feedWindow(l, time.Millisecond) // baseline window: limit 11
	if got := l.Limit(); got != 11 {
		t.Fatalf("after baseline window: limit = %d, want 11", got)
	}
	// 10ms > 2 x 1ms: decrease. 11 -> 5 -> 2 (floor), exactly.
	for i, want := range []int{5, 2, 2} {
		feedWindow(l, 10*time.Millisecond)
		if got := l.Limit(); got != want {
			t.Fatalf("after overload window %d: limit = %d, want %d", i+1, got, want)
		}
	}
}

// TestLimiterRecovery: when latencies return to the floor the limit grows
// again.
func TestLimiterRecovery(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 8, Min: 1, Max: 64, Window: 4, Tolerance: 2, Backoff: 0.5})
	feedWindow(l, time.Millisecond)    // baseline
	feedWindow(l, 10*time.Millisecond) // cut: 9 -> 4
	if got := l.Limit(); got != 4 {
		t.Fatalf("after cut: limit = %d, want 4", got)
	}
	feedWindow(l, time.Millisecond)
	if got := l.Limit(); got != 5 {
		t.Fatalf("after recovery window: limit = %d, want 5", got)
	}
}

// TestLimiterBaselineAges: after the baseline ring fills with the new,
// higher latency floor, that floor stops reading as overload — the
// limiter adapts to a genuinely slower backend instead of collapsing to
// Min forever.
func TestLimiterBaselineAges(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 16, Min: 1, Max: 64, Window: 2, Tolerance: 2, Backoff: 0.5})
	feedWindow(l, time.Millisecond) // old floor into history
	// New floor 10ms: cut while the 1ms baseline survives in the ring...
	for i := 0; i < baselineWindows; i++ {
		feedWindow(l, 10*time.Millisecond)
	}
	// ...but now the ring holds only 10ms windows: 10ms is the new normal.
	before := l.Limit()
	feedWindow(l, 10*time.Millisecond)
	if got := l.Limit(); got != before+1 {
		t.Fatalf("after baseline aged: limit = %d, want %d (additive increase at the new floor)", got, before+1)
	}
}

func TestLimiterFixed(t *testing.T) {
	l := NewLimiter(LimiterConfig{Min: 5, Max: 5, Window: 2})
	if !l.Fixed() {
		t.Fatal("Min == Max limiter not fixed")
	}
	feedWindow(l, time.Millisecond)
	feedWindow(l, time.Hour)
	if got := l.Limit(); got != 5 {
		t.Fatalf("fixed limit moved to %d", got)
	}
}
