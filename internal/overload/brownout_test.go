package overload

import "testing"

// feedBrownoutWindow pushes one full window with `pressured` of the samples
// marked pressured (the rest calm).
func feedBrownoutWindow(b *Brownout, pressured int) {
	for i := 0; i < b.cfg.Window; i++ {
		b.Observe(i < pressured)
	}
}

func TestBrownoutEscalation(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Window: 4, UpFraction: 0.75, DownFraction: 0.25, CalmWindows: 2})
	want := []Tier{TierStale, TierNoHedge, TierShedLow, TierShedLow}
	for i, w := range want {
		feedBrownoutWindow(b, 3) // 3/4 >= UpFraction
		if got := b.Tier(); got != w {
			t.Fatalf("after pressured window %d: tier = %v, want %v", i+1, got, w)
		}
	}
	if got := b.Transitions(); got != 3 {
		t.Fatalf("transitions = %d, want 3 (top tier saturates)", got)
	}
}

// TestBrownoutHysteresis: de-escalation needs CalmWindows consecutive calm
// windows; a single calm window — or a middling one — does not step down.
func TestBrownoutHysteresis(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Window: 4, UpFraction: 0.75, DownFraction: 0.25, CalmWindows: 2})
	feedBrownoutWindow(b, 4)
	if got := b.Tier(); got != TierStale {
		t.Fatalf("tier = %v, want %v", got, TierStale)
	}

	feedBrownoutWindow(b, 0) // calm window 1 of 2: no change yet
	if got := b.Tier(); got != TierStale {
		t.Fatalf("after one calm window: tier = %v, want still %v", got, TierStale)
	}
	feedBrownoutWindow(b, 2) // 2/4 is neither calm nor pressured: calm run resets
	if got := b.Tier(); got != TierStale {
		t.Fatalf("after middling window: tier = %v, want still %v", got, TierStale)
	}
	feedBrownoutWindow(b, 0)
	feedBrownoutWindow(b, 0) // two consecutive calm windows: step down
	if got := b.Tier(); got != TierNormal {
		t.Fatalf("after two calm windows: tier = %v, want %v", got, TierNormal)
	}
	// Already at the floor: further calm windows stay put.
	feedBrownoutWindow(b, 0)
	feedBrownoutWindow(b, 0)
	if got := b.Tier(); got != TierNormal {
		t.Fatalf("tier below floor: %v", got)
	}
}

func TestBrownoutPartialWindowHoldsState(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Window: 8, UpFraction: 0.5, DownFraction: 0.1, CalmWindows: 2})
	for i := 0; i < 7; i++ {
		b.Observe(true)
	}
	if got := b.Tier(); got != TierNormal {
		t.Fatalf("tier moved mid-window: %v", got)
	}
	b.Observe(true) // closes the window
	if got := b.Tier(); got != TierStale {
		t.Fatalf("tier after closing window = %v, want %v", got, TierStale)
	}
}

func TestTierString(t *testing.T) {
	want := map[Tier]string{
		TierNormal:  "normal",
		TierStale:   "serve-stale",
		TierNoHedge: "no-hedge",
		TierShedLow: "shed-low-priority",
		Tier(99):    "unknown",
	}
	for tier, name := range want {
		if got := tier.String(); got != name {
			t.Fatalf("Tier(%d).String() = %q, want %q", int(tier), got, name)
		}
	}
}
