package overload

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Queue admission errors. All of them mean "shed": the request never got a
// concurrency slot.
var (
	// ErrQueueFull: the bounded waiter queue is at capacity.
	ErrQueueFull = errors.New("overload: admission queue full")
	// ErrWouldExpire: the predicted queue wait exceeds the request's budget,
	// so it is rejected immediately instead of being parked to time out.
	ErrWouldExpire = errors.New("overload: predicted queue wait exceeds deadline")
	// ErrQueueTimeout: the request waited its full budget without being
	// admitted (only possible when the wait prediction was optimistic).
	ErrQueueTimeout = errors.New("overload: queue wait exceeded deadline")
)

// waiter is one parked request. ready has capacity 1 and receives exactly
// one grant, so the granting side never blocks. admitted is stamped at
// grant time (under q.mu, before the send): queue wait measures how long
// the *queue* took to grant a slot, not how long the scheduler took to
// resume the waiter afterwards — so it stays bounded by the budget even
// on an oversubscribed machine.
type waiter struct {
	ready    chan struct{}
	granted  bool
	deadline time.Time
	admitted time.Time
}

// Queue is the bounded admission queue in front of the concurrency
// limiter. Requests acquire a slot immediately when the limiter has room,
// wait FIFO when it does not, and are shed *before* enqueueing whenever
// the predicted wait (queue depth x EWMA service time / concurrency)
// already exceeds their budget — a request that cannot be served in time
// must be rejected in microseconds, not parked to time out.
type Queue struct {
	limiter  *Limiter
	capacity int
	deadline time.Duration
	clock    func() time.Time

	mu sync.Mutex
	//icn:guardedby mu
	inflight int
	//icn:guardedby mu
	waiters []*waiter
	//icn:guardedby mu
	svc time.Duration // EWMA service time, for wait prediction
}

// NewQueue builds the admission queue (and its limiter) from cfg.
func NewQueue(cfg Config) *Queue {
	q := &Queue{
		limiter: NewLimiter(LimiterConfig{
			Initial: cfg.InitialConcurrency,
			Min:     cfg.MinConcurrency,
			Max:     cfg.MaxConcurrency,
		}),
		capacity: cfg.QueueCapacity,
		deadline: cfg.QueueDeadline,
		clock:    cfg.Clock,
	}
	if q.capacity <= 0 {
		q.capacity = 128
	}
	if q.deadline <= 0 {
		q.deadline = time.Second
	}
	if q.clock == nil {
		q.clock = time.Now
	}
	return q
}

// Limit returns the limiter's current concurrency limit.
func (q *Queue) Limit() int { return q.limiter.Limit() }

// Limiter returns the queue's limiter.
func (q *Queue) Limiter() *Limiter { return q.limiter }

// Deadline returns the default queue-wait budget.
func (q *Queue) Deadline() time.Duration { return q.deadline }

// Inflight returns how many requests hold a concurrency slot.
func (q *Queue) Inflight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inflight
}

// Depth returns how many requests are waiting for admission.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.waiters)
}

// Ticket is an admitted request's concurrency slot. Release must be called
// exactly once when the request finishes; it feeds the observed service
// latency back into the limiter and hands the slot to the next waiter.
type Ticket struct {
	q        *Queue
	enqueued time.Time
	admitted time.Time
	released bool
}

// QueueWait returns how long the request waited for admission.
func (t *Ticket) QueueWait() time.Duration { return t.admitted.Sub(t.enqueued) }

// Release returns the slot. Safe to call more than once; only the first
// call has effect.
func (t *Ticket) Release() {
	if t.released {
		return
	}
	t.released = true
	t.q.release(t.q.clock().Sub(t.admitted))
}

// Acquire admits the request or sheds it. It returns immediately with a
// Ticket when a slot is free, immediately with ErrQueueFull/ErrWouldExpire
// when waiting would be futile, and otherwise parks the request (FIFO) for
// at most its budget: the queue deadline, tightened by ctx's deadline.
func (q *Queue) Acquire(ctx context.Context) (*Ticket, error) {
	now := q.clock()
	q.mu.Lock()
	if q.inflight < q.limiter.Limit() && len(q.waiters) == 0 {
		q.inflight++
		q.mu.Unlock()
		return &Ticket{q: q, enqueued: now, admitted: now}, nil
	}

	budget := q.deadline
	if dl, ok := ctx.Deadline(); ok {
		if rem := dl.Sub(now); rem < budget {
			budget = rem
		}
	}
	if budget <= 0 {
		q.mu.Unlock()
		return nil, ErrWouldExpire
	}
	if len(q.waiters) >= q.capacity {
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
	// Shed-before-enqueue: with `limit` slots draining one request every
	// `svc` on average, the newcomer at position len(waiters)+1 can expect
	// to wait about position*svc/limit. If that already blows the budget,
	// rejecting now costs the client microseconds; parking it would cost
	// the full budget and still end in rejection.
	if limit := q.limiter.Limit(); q.svc > 0 && limit > 0 {
		predicted := time.Duration(int64(q.svc) * int64(len(q.waiters)+1) / int64(limit))
		if predicted > budget {
			q.mu.Unlock()
			return nil, ErrWouldExpire
		}
	}
	w := &waiter{ready: make(chan struct{}, 1), deadline: now.Add(budget)}
	q.waiters = append(q.waiters, w)
	q.mu.Unlock()

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-w.ready:
		return &Ticket{q: q, enqueued: now, admitted: w.admitted}, nil
	case <-ctx.Done():
		q.abandon(w)
		return nil, fmt.Errorf("%w: %v", ErrQueueTimeout, ctx.Err())
	case <-timer.C:
		q.abandon(w)
		return nil, ErrQueueTimeout
	}
}

// abandon removes a parked waiter. If the waiter had already been granted
// a slot in the race, the slot is released back to the queue; abandon
// reports whether the waiter was still parked (true) or had been granted
// (false).
func (q *Queue) abandon(w *waiter) bool {
	q.mu.Lock()
	if w.granted {
		// The grant and the give-up raced; return the slot without feeding a
		// bogus latency sample into the limiter.
		q.inflight--
		q.grantLocked()
		q.mu.Unlock()
		return false
	}
	for i, other := range q.waiters {
		if other == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			break
		}
	}
	q.mu.Unlock()
	return true
}

// release returns one slot, feeds the limiter, and wakes waiters.
func (q *Queue) release(latency time.Duration) {
	q.mu.Lock()
	q.inflight--
	if q.svc == 0 {
		q.svc = latency
	} else {
		// EWMA with 1/8 gain: smooth enough to ignore one outlier, fast
		// enough to track a genuine shift within a few dozen requests.
		q.svc += (latency - q.svc) / 8
	}
	q.limiter.Observe(latency)
	q.grantLocked()
	q.mu.Unlock()
}

// grantLocked admits parked waiters while slots are free. Callers hold
// q.mu. The ready channel has capacity 1 and each waiter is granted once,
// so the send cannot block; the select-default is belt and braces.
func (q *Queue) grantLocked() {
	for len(q.waiters) > 0 && q.inflight < q.limiter.Limit() {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		now := q.clock()
		if now.After(w.deadline) {
			// The waiter's budget ran out while it was parked (its timer has
			// fired; the goroutine just hasn't run abandon yet). Granting it
			// now would hand a slot to a request that is already being shed —
			// skip it and let its timeout path complete.
			continue
		}
		w.granted = true
		w.admitted = now
		q.inflight++
		select {
		case w.ready <- struct{}{}:
		default:
		}
	}
}
