package overload

import (
	"context"
	"io"
	"net/http"
	"sync/atomic"
)

// Shutdowner is anything that can stop accepting and drain in-flight work
// within a context's bound — *http.Server and internal/httpx.Server both
// qualify.
type Shutdowner interface {
	Shutdown(ctx context.Context) error
}

// Drainer coordinates graceful shutdown across a set of servers: Drain
// flips readiness (so load balancers and the admission middleware stop
// sending work), then shuts every managed server down concurrently,
// waiting for in-flight requests up to the context's deadline.
type Drainer struct {
	draining atomic.Bool
	servers  []Shutdowner
}

// Manage registers a server for draining. Not safe to call concurrently
// with Drain — wire servers at startup.
func (d *Drainer) Manage(s Shutdowner) { d.servers = append(d.servers, s) }

// Draining reports whether Drain has started.
func (d *Drainer) Draining() bool { return d.draining.Load() }

// Drain flips readiness and shuts down every managed server, returning the
// first error (typically context.DeadlineExceeded when in-flight requests
// outlived the bound). It is idempotent; concurrent calls race harmlessly
// on the same servers.
func (d *Drainer) Drain(ctx context.Context) error {
	d.draining.Store(true)
	errs := make(chan error, len(d.servers))
	for _, s := range d.servers {
		go func() { errs <- s.Shutdown(ctx) }()
	}
	var first error
	for range d.servers {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Healthz serves liveness: 200 as long as the process runs, draining or
// not — a draining server is still healthy, just not ready.
func (d *Drainer) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
}

// Readyz serves readiness: 200 while accepting work, 503 once draining so
// upstream load balancers stop routing here before the listener closes.
func (d *Drainer) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if d.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = io.WriteString(w, "draining\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ready\n")
	})
}
