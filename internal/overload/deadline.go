package overload

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries a request's remaining time budget across
// component hops as fractional milliseconds ("250", "12.5"). The value is
// relative, not an absolute timestamp, so it survives clock skew between
// hosts; each hop re-derives it from its own context deadline, so the
// budget shrinks as the request burns time in queues and upstream calls.
const DeadlineHeader = "X-ICN-Deadline"

// SetDeadlineHeader stamps h with the remaining budget from ctx's
// deadline, if any. A deadline at or past now is stamped as "0": the
// receiver sheds instantly rather than guessing.
func SetDeadlineHeader(ctx context.Context, h http.Header) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	rem := time.Until(dl)
	if rem < 0 {
		rem = 0
	}
	h.Set(DeadlineHeader, strconv.FormatFloat(float64(rem)/float64(time.Millisecond), 'f', 3, 64))
}

// HeaderDeadline parses the propagated budget from h. ok is false when the
// header is absent or malformed (a garbled budget must not shed traffic).
func HeaderDeadline(h http.Header) (time.Duration, bool) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseFloat(v, 64)
	if err != nil || ms < 0 {
		return 0, false
	}
	return time.Duration(ms * float64(time.Millisecond)), true
}

// ContextWithHeaderDeadline applies a propagated X-ICN-Deadline budget to
// ctx. The tighter of the header budget and any existing ctx deadline
// wins; cancel is nil when the header added nothing.
func ContextWithHeaderDeadline(ctx context.Context, h http.Header) (context.Context, context.CancelFunc) {
	budget, ok := HeaderDeadline(h)
	if !ok {
		return ctx, nil
	}
	if dl, has := ctx.Deadline(); has && time.Until(dl) <= budget {
		return ctx, nil
	}
	return context.WithTimeout(ctx, budget)
}

// Transport wraps next so every outgoing request carries the remaining
// budget of its context as an X-ICN-Deadline header — the client half of
// deadline propagation. A nil next uses http.DefaultTransport.
func Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return deadlineTransport{next: next}
}

type deadlineTransport struct{ next http.RoundTripper }

// RoundTrip implements http.RoundTripper.
func (t deadlineTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if _, ok := req.Context().Deadline(); ok && req.Header.Get(DeadlineHeader) == "" {
		req = req.Clone(req.Context())
		SetDeadlineHeader(req.Context(), req.Header)
	}
	return t.next.RoundTrip(req)
}
