// Package overload is the daemon's overload-control subsystem: it decides,
// per request, whether the serving stack should do the work at all — and
// when it should not, makes the refusal cheap, immediate, and observable.
//
// The pieces compose into one admission pipeline (see Middleware):
//
//   - Limiter: an adaptive concurrency limit (AIMD on observed latency
//     against a moving minimum), so the daemon finds its own capacity
//     instead of trusting a hand-tuned constant.
//   - Queue: a bounded admission queue in front of the limiter. Requests
//     that would wait past their budget are rejected *before* enqueueing
//     (503 + Retry-After), never parked to time out — shedding at the queue
//     preserves goodput, shedding after dequeue wastes the wait.
//   - Deadline propagation: client deadlines flow resolver→proxy→origin via
//     context and the X-ICN-Deadline header, so no component works on a
//     request that is already dead upstream.
//   - Brownout: under sustained pressure the stack degrades stepwise
//     (serve-stale, then no hedging/retries, then shed low-priority
//     traffic) instead of failing uniformly.
//   - Drainer: SIGTERM flips readiness, stops accepting, drains in-flight
//     requests within a bound, then lets the process exit cleanly.
//
// Everything is stdlib-only, deterministic given its input sequence (no
// RNG anywhere — tests pin exact state-machine trajectories), and safe for
// concurrent use.
package overload

import (
	"net/http"
	"strconv"
	"time"

	"idicn/internal/obs"
)

// Config assembles a Controller. The zero value is usable: adaptive limit
// 1..64 starting at 16, queue capacity 128, queue deadline 1s.
type Config struct {
	// MaxConcurrency caps the concurrency limit. When MinConcurrency equals
	// MaxConcurrency the limit is fixed (no adaptation). <= 0 means 64.
	MaxConcurrency int
	// MinConcurrency floors the adaptive limit; <= 0 means 1.
	MinConcurrency int
	// InitialConcurrency seeds the adaptive limit; <= 0 means
	// min(16, MaxConcurrency).
	InitialConcurrency int
	// QueueCapacity bounds how many requests may wait for admission;
	// <= 0 means 128.
	QueueCapacity int
	// QueueDeadline is the default per-request queue-wait budget (tightened
	// by an earlier context deadline); <= 0 means 1s.
	QueueDeadline time.Duration
	// Brownout overrides the default brownout thresholds; nil uses defaults.
	Brownout *Brownout
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
}

// Controller ties the admission queue, the adaptive limiter, and the
// brownout state machine together behind one middleware.
type Controller struct {
	queue    *Queue
	brownout *Brownout

	admitted     obs.Counter
	shedQueue    obs.Counter // queue full
	shedDeadline obs.Counter // would (or did) exceed the wait budget
	shedBrownout obs.Counter // low-priority traffic under TierShedLow
	shedDraining obs.Counter // rejected because the server is draining
	queueWait    *obs.Histogram

	draining func() bool // nil: never draining
}

// NewController builds a Controller from cfg.
func NewController(cfg Config) *Controller {
	b := cfg.Brownout
	if b == nil {
		b = NewBrownout(BrownoutConfig{})
	}
	return &Controller{
		queue:     NewQueue(cfg),
		brownout:  b,
		queueWait: obs.NewHistogram(obs.LatencyBuckets()),
	}
}

// SetDraining wires the readiness source consulted before admission; a
// draining server sheds every new request immediately. fn may be nil.
func (c *Controller) SetDraining(fn func() bool) { c.draining = fn }

// Tier returns the current brownout tier.
func (c *Controller) Tier() Tier { return c.brownout.Tier() }

// Brownout returns the controller's brownout state machine, for wiring
// degradation hooks (proxy serve-stale, resolver no-hedge).
func (c *Controller) Brownout() *Brownout { return c.brownout }

// Queue returns the controller's admission queue.
func (c *Controller) Queue() *Queue { return c.queue }

// QueueWait returns the queue-wait histogram (seconds), populated per
// admitted request.
func (c *Controller) QueueWait() *obs.Histogram { return c.queueWait }

// Admitted returns how many requests were admitted.
func (c *Controller) Admitted() int64 { return c.admitted.Value() }

// Shed returns the total number of shed requests across all reasons.
func (c *Controller) Shed() int64 {
	return c.shedQueue.Value() + c.shedDeadline.Value() + c.shedBrownout.Value() + c.shedDraining.Value()
}

// RegisterMetrics exposes every admission decision in reg under
// <component>_overload_* names: admitted/shed counters by reason, the
// queue-wait histogram, and live limit/inflight/depth/tier gauges.
func (c *Controller) RegisterMetrics(reg *obs.Registry, component string) {
	reg.Func(component+"_overload_admitted_total", c.admitted.Value)
	reg.Func(component+"_overload_shed_total", c.Shed)
	reg.Func(component+"_overload_shed_queue_full_total", c.shedQueue.Value)
	reg.Func(component+"_overload_shed_deadline_total", c.shedDeadline.Value)
	reg.Func(component+"_overload_shed_brownout_total", c.shedBrownout.Value)
	reg.Func(component+"_overload_shed_draining_total", c.shedDraining.Value)
	reg.RegisterHistogram(component+"_overload_queue_wait_seconds", c.queueWait)
	reg.Func(component+"_overload_limit", func() int64 { return int64(c.queue.Limit()) })
	reg.Func(component+"_overload_inflight", func() int64 { return int64(c.queue.Inflight()) })
	reg.Func(component+"_overload_queue_depth", func() int64 { return int64(c.queue.Depth()) })
	reg.Func(component+"_overload_brownout_tier", func() int64 { return int64(c.brownout.Tier()) })
	reg.Func(component+"_overload_brownout_transitions_total", c.brownout.transitions.Value)
}

// PriorityHeader carries a client's traffic class: "low", "normal" (the
// default), or "high". Under TierShedLow brownout, low-priority requests
// are shed before any normal traffic is touched.
const PriorityHeader = "X-ICN-Priority"

// shed writes the uniform rejection: 503 with Retry-After so well-behaved
// clients back off instead of hammering, and a terse reason for humans.
func shed(w http.ResponseWriter, reason string, retryAfter time.Duration) {
	secs := int(retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, reason, http.StatusServiceUnavailable)
}

// Middleware wraps next with the full admission pipeline: deadline
// propagation in, brownout low-priority shedding, bounded-queue admission
// with queue-deadline shedding, and per-request feedback into the limiter
// and brownout state machines. Rejected requests get 503 + Retry-After
// without ever occupying a concurrency slot.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.draining != nil && c.draining() {
			c.shedDraining.Inc()
			shed(w, "overload: draining", time.Second)
			return
		}
		ctx, cancel := ContextWithHeaderDeadline(r.Context(), r.Header)
		if cancel != nil {
			defer cancel()
		}
		if err := ctx.Err(); err != nil {
			// The propagated deadline already passed: the client upstream has
			// given up, so any work done here is pure waste.
			c.shedDeadline.Inc()
			c.brownout.Observe(true)
			shed(w, "overload: deadline exhausted", time.Second)
			return
		}
		if c.brownout.Tier() >= TierShedLow && r.Header.Get(PriorityHeader) == "low" {
			c.shedBrownout.Inc()
			c.brownout.Observe(true)
			shed(w, "overload: low-priority shed under brownout", 2*time.Second)
			return
		}
		ticket, err := c.queue.Acquire(ctx)
		if err != nil {
			switch err {
			case ErrQueueFull:
				c.shedQueue.Inc()
			default:
				c.shedDeadline.Inc()
			}
			c.brownout.Observe(true)
			shed(w, err.Error(), time.Second)
			return
		}
		c.admitted.Inc()
		wait := ticket.QueueWait()
		c.queueWait.Observe(wait.Seconds())
		// Pressure signal for brownout: a request that burned more than half
		// its queue budget was close to being shed.
		c.brownout.Observe(wait > c.queue.Deadline()/2)
		defer ticket.Release()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
