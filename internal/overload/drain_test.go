package overload

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"idicn/internal/httpx"
	"idicn/internal/testutil/leakcheck"
)

// TestDrainerLifecycle: Drain flips readiness, waits for the in-flight
// request to finish, and leaves the listener closed for new connections.
func TestDrainerLifecycle(t *testing.T) {
	leakcheck.Check(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := httpx.Start(lis, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		_, _ = io.WriteString(w, "slow ok")
	}))
	defer srv.Close()

	var d Drainer
	d.Manage(srv)

	// Ready before draining.
	rec := httptest.NewRecorder()
	d.Readyz().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", rec.Code)
	}

	// Park one in-flight request.
	inflight := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL())
		if err != nil {
			inflight <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- errors.New(resp.Status)
			return
		}
		inflight <- nil
	}()
	<-entered

	drained := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { drained <- d.Drain(ctx) }()

	waitFor(t, "draining flag", d.Draining)
	rec2 := httptest.NewRecorder()
	d.Readyz().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rec2.Code)
	}
	// Liveness stays green throughout.
	rec3 := httptest.NewRecorder()
	d.Healthz().ServeHTTP(rec3, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec3.Code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", rec3.Code)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}

	// The listener is closed: new connections are refused.
	if _, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second); err == nil {
		t.Fatal("dial after drain succeeded, want refused")
	}
}

// TestDrainerTimeout: an in-flight request that outlives the drain bound
// surfaces the context error instead of hanging forever.
func TestDrainerTimeout(t *testing.T) {
	leakcheck.Check(t)
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := httpx.Start(lis, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
	}))
	defer srv.Close()

	var d Drainer
	d.Manage(srv)
	go func() {
		resp, err := http.Get(srv.URL())
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain past bound: err = %v, want DeadlineExceeded", err)
	}
}
