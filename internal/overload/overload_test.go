package overload

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"idicn/internal/obs"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})
}

func TestMiddlewareAdmits(t *testing.T) {
	c := NewController(Config{MinConcurrency: 1, MaxConcurrency: 1})
	h := c.Middleware(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := c.Admitted(); got != 1 {
		t.Fatalf("admitted = %d, want 1", got)
	}
	if got := c.Shed(); got != 0 {
		t.Fatalf("shed = %d, want 0", got)
	}
	if got := c.Queue().Inflight(); got != 0 {
		t.Fatalf("inflight after request = %d, want 0 (ticket released)", got)
	}
}

func TestMiddlewareShedsWhileDraining(t *testing.T) {
	c := NewController(Config{})
	c.SetDraining(func() bool { return true })
	h := c.Middleware(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("body = %q, want draining reason", rec.Body.String())
	}
	if got := c.Shed(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

func TestMiddlewareShedsExhaustedDeadline(t *testing.T) {
	c := NewController(Config{})
	h := c.Middleware(okHandler())
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(DeadlineHeader, "0")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("body = %q, want deadline reason", rec.Body.String())
	}
	if got := c.Admitted(); got != 0 {
		t.Fatalf("admitted = %d, want 0", got)
	}
}

// TestMiddlewareShedsQueueFull: with the single slot occupied and the
// one-deep queue holding a waiter, the next request is rejected with 503 +
// Retry-After in well under its budget — shed at the queue, not parked.
func TestMiddlewareShedsQueueFull(t *testing.T) {
	c := NewController(Config{MinConcurrency: 1, MaxConcurrency: 1, QueueCapacity: 1, QueueDeadline: 5 * time.Second})
	entered := make(chan struct{})
	release := make(chan struct{})
	blocking := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered <- struct{}{}
		<-release
		_, _ = io.WriteString(w, "slow ok")
	}))

	done := make(chan int, 2)
	serve := func() {
		rec := httptest.NewRecorder()
		blocking.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		done <- rec.Code
	}
	go serve() // occupies the slot
	<-entered
	go serve() // parks in the queue
	waitFor(t, "waiter parked", func() bool { return c.Queue().Depth() == 1 })

	start := time.Now()
	rec := httptest.NewRecorder()
	blocking.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	elapsed := time.Since(start)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "queue full") {
		t.Fatalf("body = %q, want queue-full reason", rec.Body.String())
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("queue-full shed took %v, want immediate rejection", elapsed)
	}

	close(release)
	<-entered // the queued request enters once the slot frees up
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocked request finished with %d", code)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request finished with %d", code)
	}
	if got := c.Admitted(); got != 2 {
		t.Fatalf("admitted = %d, want 2", got)
	}
	if got := c.Shed(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

func TestMiddlewareShedsLowPriorityUnderBrownout(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Window: 1, UpFraction: 0.5, DownFraction: 0.1, CalmWindows: 2})
	for i := 0; i < 3; i++ {
		b.Observe(true)
	}
	if b.Tier() != TierShedLow {
		t.Fatalf("setup: tier = %v, want %v", b.Tier(), TierShedLow)
	}
	c := NewController(Config{Brownout: b})
	h := c.Middleware(okHandler())

	low := httptest.NewRequest(http.MethodGet, "/", nil)
	low.Header.Set(PriorityHeader, "low")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, low)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("low-priority status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "low-priority") {
		t.Fatalf("body = %q, want low-priority reason", rec.Body.String())
	}

	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec2.Code != http.StatusOK {
		t.Fatalf("normal-priority status = %d, want 200 (only low-priority sheds)", rec2.Code)
	}
}

// TestRegisterMetrics: every admission decision surfaces on the text
// endpoint under <component>_overload_* names.
func TestRegisterMetrics(t *testing.T) {
	c := NewController(Config{MinConcurrency: 2, MaxConcurrency: 2})
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg, "proxy")
	h := c.Middleware(okHandler())

	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	c.SetDraining(func() bool { return true })
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))

	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"proxy_overload_admitted_total 1\n",
		"proxy_overload_shed_total 1\n",
		"proxy_overload_shed_draining_total 1\n",
		"proxy_overload_shed_queue_full_total 0\n",
		"proxy_overload_queue_wait_seconds_count 1\n",
		"proxy_overload_limit 2\n",
		"proxy_overload_inflight 0\n",
		"proxy_overload_queue_depth 0\n",
		"proxy_overload_brownout_tier 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics text missing %q:\n%s", want, text)
		}
	}
}
