package overload

import (
	"sync"

	"idicn/internal/obs"
)

// Tier is a brownout level: how aggressively the stack is currently
// degrading. Under sustained overload the daemon climbs the ladder one
// step at a time, shedding the cheapest quality first — stale content
// beats no content, an unhedged lookup beats a shed request, and shedding
// low-priority traffic beats shedding uniformly.
type Tier int

const (
	// TierNormal: full service.
	TierNormal Tier = iota
	// TierStale: serve expired cache entries without revalidating first.
	TierStale
	// TierNoHedge: additionally skip hedged lookups and retries — under
	// overload the duplicate requests they issue are fuel on the fire.
	TierNoHedge
	// TierShedLow: additionally shed low-priority requests at admission.
	TierShedLow

	numTiers
)

var tierNames = [numTiers]string{"normal", "serve-stale", "no-hedge", "shed-low-priority"}

// String returns the tier's human-readable name.
func (t Tier) String() string {
	if t >= 0 && int(t) < len(tierNames) {
		return tierNames[t]
	}
	return "unknown"
}

// BrownoutConfig shapes the brownout state machine. The zero value is
// usable: 64-sample windows, escalate at 50% pressure, de-escalate after
// 2 consecutive windows under 10%.
type BrownoutConfig struct {
	// Window is how many admission outcomes form one evaluation window;
	// <= 0 means 64.
	Window int
	// UpFraction escalates one tier when at least this fraction of a
	// window was pressured; <= 0 means 0.5.
	UpFraction float64
	// DownFraction marks a window calm when at most this fraction was
	// pressured; <= 0 means 0.1.
	DownFraction float64
	// CalmWindows is how many consecutive calm windows step the tier back
	// down by one; <= 0 means 2. De-escalating slower than escalating keeps
	// the ladder from oscillating at the overload boundary.
	CalmWindows int
}

func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.UpFraction <= 0 {
		c.UpFraction = 0.5
	}
	if c.DownFraction <= 0 {
		c.DownFraction = 0.1
	}
	if c.CalmWindows <= 0 {
		c.CalmWindows = 2
	}
	return c
}

// Brownout is the degradation state machine. It consumes one boolean
// pressure signal per admission decision (shed, or admitted after burning
// most of its queue budget) and moves the tier stepwise: a mostly-pressured
// window escalates, a sustained run of calm windows de-escalates. The
// trajectory is a pure function of the observation sequence — no clock, no
// RNG — so tests pin transitions exactly.
type Brownout struct {
	cfg BrownoutConfig

	mu sync.Mutex
	//icn:guardedby mu
	tier Tier
	//icn:guardedby mu
	samples int
	//icn:guardedby mu
	pressured int
	//icn:guardedby mu
	calm int

	transitions obs.Counter
}

// NewBrownout builds a brownout state machine from cfg.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	return &Brownout{cfg: cfg.withDefaults()}
}

// Tier returns the current brownout tier.
func (b *Brownout) Tier() Tier {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tier
}

// Transitions returns how many tier changes have occurred.
func (b *Brownout) Transitions() int64 { return b.transitions.Value() }

// Observe feeds one admission outcome: pressured is true when the request
// was shed or nearly so.
func (b *Brownout) Observe(pressured bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.samples++
	if pressured {
		b.pressured++
	}
	if b.samples < b.cfg.Window {
		return
	}
	frac := float64(b.pressured) / float64(b.samples)
	switch {
	case frac >= b.cfg.UpFraction:
		b.calm = 0
		if b.tier < numTiers-1 {
			b.tier++
			b.transitions.Inc()
		}
	case frac <= b.cfg.DownFraction:
		b.calm++
		if b.calm >= b.cfg.CalmWindows && b.tier > TierNormal {
			b.tier--
			b.calm = 0
			b.transitions.Inc()
		}
	default:
		b.calm = 0
	}
	b.samples = 0
	b.pressured = 0
}
