package overload

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	h := http.Header{}
	SetDeadlineHeader(ctx, h)
	got, ok := HeaderDeadline(h)
	if !ok {
		t.Fatal("HeaderDeadline: header not parsed")
	}
	if got <= 0 || got > 250*time.Millisecond {
		t.Fatalf("round-tripped budget = %v, want in (0, 250ms]", got)
	}
}

func TestDeadlineHeaderAbsentWithoutDeadline(t *testing.T) {
	h := http.Header{}
	SetDeadlineHeader(context.Background(), h)
	if v := h.Get(DeadlineHeader); v != "" {
		t.Fatalf("header stamped without a deadline: %q", v)
	}
	if _, ok := HeaderDeadline(h); ok {
		t.Fatal("HeaderDeadline parsed an absent header")
	}
}

func TestDeadlineHeaderMalformed(t *testing.T) {
	for _, v := range []string{"bogus", "-5", "1e999x", ""} {
		h := http.Header{}
		if v != "" {
			h.Set(DeadlineHeader, v)
		}
		if _, ok := HeaderDeadline(h); ok {
			t.Fatalf("HeaderDeadline accepted %q", v)
		}
	}
}

func TestContextWithHeaderDeadline(t *testing.T) {
	// Fresh context: the header supplies the deadline.
	h := http.Header{}
	h.Set(DeadlineHeader, "50")
	ctx, cancel := ContextWithHeaderDeadline(context.Background(), h)
	if cancel == nil {
		t.Fatal("header budget on a fresh context: want non-nil cancel")
	}
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("no deadline applied")
	}
	if rem := time.Until(dl); rem <= 0 || rem > 50*time.Millisecond {
		t.Fatalf("applied budget = %v, want in (0, 50ms]", rem)
	}

	// Existing tighter deadline wins: header adds nothing.
	tight, tcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer tcancel()
	ctx2, cancel2 := ContextWithHeaderDeadline(tight, h)
	if cancel2 != nil {
		t.Fatal("header looser than ctx: want nil cancel (no-op)")
	}
	if dl2, _ := ctx2.Deadline(); time.Until(dl2) > 5*time.Millisecond {
		t.Fatalf("deadline loosened to %v", time.Until(dl2))
	}

	// Header tighter than the existing deadline wins.
	loose, lcancel := context.WithTimeout(context.Background(), time.Minute)
	defer lcancel()
	ctx3, cancel3 := ContextWithHeaderDeadline(loose, h)
	if cancel3 == nil {
		t.Fatal("header tighter than ctx: want non-nil cancel")
	}
	defer cancel3()
	if dl3, _ := ctx3.Deadline(); time.Until(dl3) > 50*time.Millisecond {
		t.Fatalf("header did not tighten deadline: %v remaining", time.Until(dl3))
	}

	// No header: pass-through.
	ctx4, cancel4 := ContextWithHeaderDeadline(context.Background(), http.Header{})
	if cancel4 != nil {
		t.Fatal("no header: want nil cancel")
	}
	if _, ok := ctx4.Deadline(); ok {
		t.Fatal("no header: deadline appeared from nowhere")
	}
}

// TestTransportStampsHeader: the client half — outgoing requests carry the
// remaining context budget, and a pre-set header is left alone.
func TestTransportStampsHeader(t *testing.T) {
	seen := make(chan string, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen <- r.Header.Get(DeadlineHeader)
	}))
	defer srv.Close()
	client := &http.Client{Transport: Transport(nil)}

	// With a context deadline: stamped.
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp.Body.Close()
	h := http.Header{}
	h.Set(DeadlineHeader, <-seen)
	if got, ok := HeaderDeadline(h); !ok || got <= 0 || got > 200*time.Millisecond {
		t.Fatalf("stamped budget = %v (ok=%v), want in (0, 200ms]", got, ok)
	}

	// Without a deadline: no header.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	resp2, err := client.Do(req2)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp2.Body.Close()
	if v := <-seen; v != "" {
		t.Fatalf("header stamped without a deadline: %q", v)
	}

	// Pre-set header is preserved, not overwritten.
	req3, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	req3.Header.Set(DeadlineHeader, "7.000")
	resp3, err := client.Do(req3)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp3.Body.Close()
	if v := <-seen; v != "7.000" {
		t.Fatalf("pre-set header overwritten: %q", v)
	}
}
