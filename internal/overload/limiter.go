package overload

import (
	"sync"
	"time"
)

// LimiterConfig shapes the adaptive concurrency limiter. The zero value is
// usable: limit 1..64 starting at 16, window 32 samples, tolerance 2x,
// backoff 0.8.
type LimiterConfig struct {
	// Initial seeds the limit; <= 0 means min(16, Max).
	Initial int
	// Min floors the limit; <= 0 means 1.
	Min int
	// Max caps the limit; <= 0 means 64. Min == Max fixes the limit (no
	// adaptation) — the -max-concurrency escape hatch.
	Max int
	// Window is how many latency samples form one adaptation step;
	// <= 0 means 32.
	Window int
	// Tolerance is how much the window's minimum latency may exceed the
	// moving baseline before the limit is cut; <= 0 means 2.0.
	Tolerance float64
	// Backoff is the multiplicative-decrease factor; outside (0,1) means 0.8.
	Backoff float64
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Max <= 0 {
		c.Max = 64
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Min > c.Max {
		c.Min = c.Max
	}
	if c.Initial <= 0 {
		c.Initial = 16
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 2.0
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.8
	}
	return c
}

// baselineWindows is how many past adaptation windows the moving-minimum
// baseline remembers. Short enough that a genuine shift in the latency
// floor (a slower backend, a config change) ages in; long enough that one
// overloaded window cannot drag the baseline up and mask the overload it
// caused.
const baselineWindows = 8

// Limiter is an AIMD adaptive concurrency limiter driven purely by
// observed request latencies: every Window samples it compares the
// window's minimum latency against a moving baseline (the minimum over the
// last baselineWindows windows). A window whose floor exceeds
// Tolerance x baseline means queueing is happening somewhere — cut the
// limit multiplicatively; otherwise grow it additively. No wall clock and
// no RNG: the trajectory is a pure function of the sample sequence, so
// tests (and the determinism vet pass) can pin it exactly.
type Limiter struct {
	cfg LimiterConfig

	mu sync.Mutex
	//icn:guardedby mu
	limit float64
	//icn:guardedby mu
	samples int // samples seen in the current window
	//icn:guardedby mu
	windowMin time.Duration // min latency in the current window
	//icn:guardedby mu
	history [baselineWindows]time.Duration
	//icn:guardedby mu
	histLen int // how many history slots are filled
	//icn:guardedby mu
	histNext int // ring index of the next slot to overwrite
}

// NewLimiter builds a limiter from cfg.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// Limit returns the current concurrency limit (always >= 1).
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Fixed reports whether the limit is pinned (Min == Max).
func (l *Limiter) Fixed() bool { return l.cfg.Min == l.cfg.Max }

// Observe feeds one completed request's service latency into the limiter.
func (l *Limiter) Observe(latency time.Duration) {
	if latency < 0 {
		latency = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.samples == 0 || latency < l.windowMin {
		l.windowMin = latency
	}
	l.samples++
	if l.samples < l.cfg.Window {
		return
	}
	l.adaptLocked(l.windowMin)
	l.samples = 0
	l.windowMin = 0
}

// adaptLocked closes one window: compare its latency floor against the
// baseline, then record it into the baseline ring. Callers hold l.mu.
func (l *Limiter) adaptLocked(windowMin time.Duration) {
	if !l.Fixed() {
		if base, ok := l.baselineLocked(); ok && float64(windowMin) > l.cfg.Tolerance*float64(base) {
			l.limit *= l.cfg.Backoff
			if l.limit < float64(l.cfg.Min) {
				l.limit = float64(l.cfg.Min)
			}
		} else {
			l.limit++
			if l.limit > float64(l.cfg.Max) {
				l.limit = float64(l.cfg.Max)
			}
		}
	}
	l.history[l.histNext] = windowMin
	l.histNext = (l.histNext + 1) % baselineWindows
	if l.histLen < baselineWindows {
		l.histLen++
	}
}

// baselineLocked returns the moving minimum over the remembered windows.
// Callers hold l.mu.
func (l *Limiter) baselineLocked() (time.Duration, bool) {
	if l.histLen == 0 {
		return 0, false
	}
	base := l.history[0]
	for i := 1; i < l.histLen; i++ {
		if l.history[i] < base {
			base = l.history[i]
		}
	}
	return base, true
}
