package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic queue tests.
// Only the latency/budget arithmetic uses it; the park timer still runs on
// the wall clock, so tests that park use real (short) waits.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fixedQueue builds a queue with a non-adaptive limit, the workhorse for
// state-machine tests.
func fixedQueue(limit int, cfg Config) *Queue {
	cfg.MinConcurrency = limit
	cfg.MaxConcurrency = limit
	cfg.InitialConcurrency = limit
	return NewQueue(cfg)
}

// waitFor polls cond for up to a second — used only to sequence goroutines
// around the park/grant boundary, never to assert timing.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueFastPath(t *testing.T) {
	clk := newFakeClock()
	q := fixedQueue(2, Config{Clock: clk.Now})
	t1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	t2, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if got := q.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	if w := t1.QueueWait(); w != 0 {
		t.Fatalf("fast-path queue wait = %v, want 0", w)
	}
	clk.Advance(10 * time.Millisecond)
	t1.Release()
	t1.Release() // idempotent: second call must not double-decrement
	t2.Release()
	if got := q.Inflight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0", got)
	}
}

// TestQueueFIFOGrant: parked waiters are admitted in arrival order when
// slots free up.
func TestQueueFIFOGrant(t *testing.T) {
	q := fixedQueue(1, Config{QueueDeadline: time.Minute})
	t1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}

	type result struct {
		id     int
		ticket *Ticket
	}
	admitted := make(chan result, 2)
	park := func(id int) {
		tk, err := q.Acquire(context.Background())
		if err != nil {
			t.Errorf("waiter %d: %v", id, err)
			return
		}
		admitted <- result{id, tk}
	}
	go park(1)
	waitFor(t, "first waiter parked", func() bool { return q.Depth() == 1 })
	go park(2)
	waitFor(t, "second waiter parked", func() bool { return q.Depth() == 2 })

	t1.Release()
	first := <-admitted
	if first.id != 1 {
		t.Fatalf("first grant went to waiter %d, want 1 (FIFO)", first.id)
	}
	if q.Depth() != 1 {
		t.Fatalf("depth after first grant = %d, want 1", q.Depth())
	}
	first.ticket.Release()
	second := <-admitted
	if second.id != 2 {
		t.Fatalf("second grant went to waiter %d, want 2", second.id)
	}
	second.ticket.Release()
}

// TestQueueFull: once capacity waiters are parked, further requests are
// rejected immediately.
func TestQueueFull(t *testing.T) {
	q := fixedQueue(1, Config{QueueCapacity: 1, QueueDeadline: time.Minute})
	t1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	parked := make(chan *Ticket, 1)
	go func() {
		tk, err := q.Acquire(context.Background())
		if err != nil {
			t.Errorf("parked waiter: %v", err)
			return
		}
		parked <- tk
	}()
	waitFor(t, "waiter parked", func() bool { return q.Depth() == 1 })

	if _, err := q.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Acquire past capacity: err = %v, want ErrQueueFull", err)
	}
	t1.Release()
	(<-parked).Release()
}

// TestQueueShedBeforeEnqueue: once the EWMA service time predicts a wait
// past the budget, the request is rejected instantly, not parked.
func TestQueueShedBeforeEnqueue(t *testing.T) {
	clk := newFakeClock()
	q := fixedQueue(1, Config{Clock: clk.Now, QueueDeadline: time.Second})

	// Prime the service-time EWMA: one request that took 100ms.
	t1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	clk.Advance(100 * time.Millisecond)
	t1.Release()

	// Occupy the only slot again.
	t2, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer t2.Release()

	// Budget 10ms << predicted 100ms wait: shed before enqueueing.
	ctx, cancel := context.WithDeadline(context.Background(), clk.Now().Add(10*time.Millisecond))
	defer cancel()
	if _, err := q.Acquire(ctx); !errors.Is(err, ErrWouldExpire) {
		t.Fatalf("Acquire with tiny budget: err = %v, want ErrWouldExpire", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("shed request left depth = %d, want 0", q.Depth())
	}

	// A deadline already in the past is shed the same way.
	expired, cancel2 := context.WithDeadline(context.Background(), clk.Now().Add(-time.Millisecond))
	defer cancel2()
	if _, err := q.Acquire(expired); !errors.Is(err, ErrWouldExpire) {
		t.Fatalf("Acquire with expired budget: err = %v, want ErrWouldExpire", err)
	}
}

// TestQueueTimeout: a parked request whose budget elapses is rejected with
// ErrQueueTimeout (reachable only when no service-time prediction existed).
func TestQueueTimeout(t *testing.T) {
	q := fixedQueue(1, Config{QueueDeadline: 20 * time.Millisecond})
	t1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer t1.Release()

	// Queue-deadline timeout (background ctx, svc EWMA still unprimed).
	if _, err := q.Acquire(context.Background()); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("Acquire timing out on queue deadline: err = %v, want ErrQueueTimeout", err)
	}
	if q.Depth() != 0 {
		t.Fatalf("timed-out waiter left depth = %d, want 0", q.Depth())
	}

	// Context cancellation while parked is reported the same way.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx)
		done <- err
	}()
	waitFor(t, "waiter parked", func() bool { return q.Depth() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("canceled Acquire: err = %v, want ErrQueueTimeout", err)
	}
}

// TestQueueWaitMeasured: an admitted-after-waiting ticket reports the wait
// through the injected clock.
func TestQueueWaitMeasured(t *testing.T) {
	clk := newFakeClock()
	q := fixedQueue(1, Config{Clock: clk.Now, QueueDeadline: time.Minute})
	t1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	admitted := make(chan *Ticket, 1)
	go func() {
		tk, err := q.Acquire(context.Background())
		if err != nil {
			t.Errorf("parked waiter: %v", err)
			return
		}
		admitted <- tk
	}()
	waitFor(t, "waiter parked", func() bool { return q.Depth() == 1 })
	clk.Advance(30 * time.Millisecond)
	t1.Release()
	tk := <-admitted
	if got := tk.QueueWait(); got != 30*time.Millisecond {
		t.Fatalf("QueueWait = %v, want 30ms", got)
	}
	tk.Release()
}

// TestQueueExpiredWaiterNotGranted: a slot freeing up must never be handed
// to a waiter whose budget already lapsed — that request is being shed (its
// park timer has fired) even if its goroutine hasn't observed it yet.
// Granting it would both waste the slot and record a queue wait beyond the
// deadline.
func TestQueueExpiredWaiterNotGranted(t *testing.T) {
	clk := newFakeClock()
	q := fixedQueue(1, Config{QueueDeadline: 50 * time.Millisecond, Clock: clk.Now})
	t1, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := q.Acquire(context.Background())
		errc <- err
	}()
	waitFor(t, "second request to park", func() bool { return q.Depth() == 1 })

	clk.Advance(time.Minute) // the parked waiter's budget has long lapsed
	t1.Release()
	if err := <-errc; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("expired waiter: err = %v, want ErrQueueTimeout", err)
	}
	if got := q.Inflight(); got != 0 {
		t.Fatalf("inflight after skipping expired waiter = %d, want 0", got)
	}
	// The freed slot is available to fresh work immediately.
	t3, err := q.Acquire(context.Background())
	if err != nil {
		t.Fatalf("fresh Acquire after expired skip: %v", err)
	}
	t3.Release()
}
