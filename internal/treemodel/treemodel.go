// Package treemodel implements the paper's §2.2 analytical optimization
// model: optimal static object placement on a k-ary distribution tree under
// a Zipf workload.
//
// The tree has Levels levels; requests arrive at level-1 nodes (the leaves)
// and travel toward the root. The top level hosts the origin server, which
// holds every object; levels 1..Levels-1 are caches. Serving a request at
// level l costs l (the paper's convention: "the expected number of hops that
// a request traverses is 0.4x1 + ... + 0.18x6").
//
// For up-tree routing with demand that is homogeneous across leaves, the
// optimal static placement is *nested*: each level stores the most popular
// objects not already stored below it, so level l covers a consecutive rank
// range. This reduces the ILP the paper formulates to closed-form level
// fractions (LevelFractions, reproducing Figure 2) and makes the
// budget-split variant a separable concave maximization solved exactly by
// marginal-gain greedy (OptimalBudgetSplit, reproducing the finding that
// "the optimal solution under a Zipf workload involves assigning a majority
// of the total caching budget to the leaves").
package treemodel

import (
	"idicn/internal/zipfian"
)

// Config describes the symmetric equal-cache-size model of Figure 2.
type Config struct {
	Arity        int     // tree arity (the paper uses a binary tree)
	Levels       int     // total levels including the origin (paper: 6)
	SlotsPerNode int     // cache slots per caching node (levels 1..Levels-1)
	Objects      int     // object universe size
	Alpha        float64 // Zipf exponent of the request distribution
}

func (c Config) validate() {
	if c.Arity < 2 || c.Levels < 2 || c.SlotsPerNode < 0 || c.Objects <= 0 {
		panic("treemodel: invalid Config")
	}
}

// NodesAtLevel returns the number of tree nodes at level l (1-based;
// level Levels is the single origin/root).
func (c Config) NodesAtLevel(l int) int {
	n := 1
	for i := 0; i < c.Levels-l; i++ {
		n *= c.Arity
	}
	return n
}

// LevelFractions returns the fraction of requests served at each level
// under the optimal static placement; index i holds level i+1. The last
// entry is the origin's share. This regenerates Figure 2's series.
func (c Config) LevelFractions() []float64 {
	c.validate()
	dist := zipfian.New(c.Alpha, c.Objects)
	out := make([]float64, c.Levels)
	prev := 0.0
	for l := 1; l < c.Levels; l++ {
		hi := l * c.SlotsPerNode
		if hi > c.Objects {
			hi = c.Objects
		}
		f := dist.CDF(hi - 1)
		out[l-1] = f - prev
		prev = f
	}
	out[c.Levels-1] = 1 - prev
	return out
}

// ExpectedHops returns the expected request cost under the optimal
// placement, with serving at level l costing l hops.
func (c Config) ExpectedHops() float64 {
	return expectedHops(c.LevelFractions())
}

// EdgeOnlyExpectedHops returns the expected cost when only the leaves cache
// (levels 2..Levels-1 empty): every leaf miss is served at the origin. This
// is the paper's "extreme scenario where we have no caches at the
// intermediate levels".
func (c Config) EdgeOnlyExpectedHops() float64 {
	c.validate()
	dist := zipfian.New(c.Alpha, c.Objects)
	hit := dist.CDF(c.SlotsPerNode - 1)
	return hit*1 + (1-hit)*float64(c.Levels)
}

func expectedHops(fractions []float64) float64 {
	var e float64
	for i, f := range fractions {
		e += float64(i+1) * f
	}
	return e
}

// Split is the result of OptimalBudgetSplit: how a total cache budget is
// best divided across tree levels.
type Split struct {
	// PerNodeSlots[i] is the number of slots each node at level i+1 gets
	// (levels 1..Levels-1; the origin needs no budget).
	PerNodeSlots []int
	// BudgetShare[i] is the fraction of the total budget consumed by level
	// i+1 in aggregate.
	BudgetShare []float64
	// ExpectedHops is the resulting expected request cost.
	ExpectedHops float64
	// LevelFractions[i] is the fraction of requests served at level i+1,
	// with the origin's share last.
	LevelFractions []float64
}

// OptimalBudgetSplit distributes totalBudget cache slots across the caching
// levels of the tree to minimize expected hops, with every node at the same
// level receiving the same allocation (demand is homogeneous, so asymmetric
// allocations cannot help). The nested-placement reduction makes the
// objective separable and concave in the per-path cumulative slot counts,
// so unit-increment greedy on marginal gain per budget cost is exact.
func OptimalBudgetSplit(cfg Config, totalBudget int) Split {
	cfg.validate()
	if totalBudget < 0 {
		panic("treemodel: negative budget")
	}
	dist := zipfian.New(cfg.Alpha, cfg.Objects)
	caching := cfg.Levels - 1
	// w[l] = marginal budget cost of advancing the cumulative per-path slot
	// count s_l by one: nodes(l) - nodes(l+1), where the origin level
	// contributes no cache nodes.
	w := make([]int, caching)
	for l := 1; l <= caching; l++ {
		upper := 0
		if l+1 <= caching {
			upper = cfg.NodesAtLevel(l + 1)
		}
		w[l-1] = cfg.NodesAtLevel(l) - upper
	}
	s := make([]int, caching) // cumulative per-path slots through level l
	budget := totalBudget
	for {
		best := -1
		var bestGain float64
		// Iterate from the top caching level down so that ties in marginal
		// gain go to the higher (cheaper-in-aggregate) level, preserving the
		// monotonicity s_1 <= ... <= s_{L-1} that nested placement requires.
		for i := caching - 1; i >= 0; i-- {
			if s[i] >= cfg.Objects || w[i] > budget {
				continue
			}
			// Advancing s_i by one newly serves rank s[i] at level i+1
			// instead of one level higher (or the origin), which by the
			// summation-by-parts identity is worth PMF(s_i) per unit.
			gain := dist.PMF(s[i]) / float64(w[i])
			if gain > bestGain {
				bestGain, best = gain, i
			}
		}
		if best < 0 || bestGain <= 0 {
			break
		}
		s[best]++
		budget -= w[best]
	}
	// Convert cumulative counts to per-node slots; enforce monotonicity
	// defensively (greedy preserves it since w decreases with level).
	perNode := make([]int, caching)
	prev := 0
	for i := 0; i < caching; i++ {
		if s[i] < prev {
			s[i] = prev
		}
		perNode[i] = s[i] - prev
		prev = s[i]
	}
	share := make([]float64, caching)
	if totalBudget > 0 {
		for i := 0; i < caching; i++ {
			share[i] = float64(perNode[i]*cfg.NodesAtLevel(i+1)) / float64(totalBudget)
		}
	}
	fractions := make([]float64, cfg.Levels)
	prevF := 0.0
	for i := 0; i < caching; i++ {
		f := dist.CDF(s[i] - 1)
		fractions[i] = f - prevF
		prevF = f
	}
	fractions[cfg.Levels-1] = 1 - prevF
	return Split{
		PerNodeSlots:   perNode,
		BudgetShare:    share,
		ExpectedHops:   expectedHops(fractions),
		LevelFractions: fractions,
	}
}
