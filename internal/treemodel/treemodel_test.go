package treemodel

import (
	"math"
	"testing"
	"testing/quick"

	"idicn/internal/zipfian"
)

func fig2Config(alpha float64) Config {
	// Binary tree, 6 levels, per-node cache of 5% of a 10k universe: the
	// setting that reproduces Figure 2's alpha=0.7 leaf share of ~0.4.
	return Config{Arity: 2, Levels: 6, SlotsPerNode: 500, Objects: 10000, Alpha: alpha}
}

func TestNodesAtLevel(t *testing.T) {
	c := fig2Config(1)
	want := []int{32, 16, 8, 4, 2, 1}
	for l := 1; l <= 6; l++ {
		if got := c.NodesAtLevel(l); got != want[l-1] {
			t.Errorf("NodesAtLevel(%d) = %d, want %d", l, got, want[l-1])
		}
	}
}

func TestLevelFractionsSumToOne(t *testing.T) {
	for _, alpha := range []float64{0.7, 1.1, 1.5} {
		fr := fig2Config(alpha).LevelFractions()
		if len(fr) != 6 {
			t.Fatalf("got %d levels", len(fr))
		}
		sum := 0.0
		for _, f := range fr {
			if f < -1e-12 {
				t.Fatalf("alpha=%v: negative fraction %v", alpha, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: fractions sum to %v", alpha, sum)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	// The paper's alpha=0.7 discussion: leaves serve ~0.4 of requests, and
	// intermediate levels 2..5 each add little.
	fr := fig2Config(0.7).LevelFractions()
	if math.Abs(fr[0]-0.4) > 0.05 {
		t.Errorf("alpha=0.7 leaf share = %v, want ~0.4", fr[0])
	}
	for l := 1; l < 5; l++ {
		if fr[l] > fr[0]/2 {
			t.Errorf("intermediate level %d serves %v, expected far less than leaves (%v)", l+1, fr[l], fr[0])
		}
	}
	// Higher alpha concentrates more mass at the leaves.
	lowLeaf := fig2Config(0.7).LevelFractions()[0]
	midLeaf := fig2Config(1.1).LevelFractions()[0]
	highLeaf := fig2Config(1.5).LevelFractions()[0]
	if !(highLeaf > midLeaf && midLeaf > lowLeaf) {
		t.Errorf("leaf share not increasing in alpha: %v, %v, %v", lowLeaf, midLeaf, highLeaf)
	}
}

func TestExpectedHopsMatchesPaperExample(t *testing.T) {
	// Paper: with alpha=0.7 the optimal placement yields ~3 expected hops,
	// and removing all intermediate caches yields 0.4*1 + 0.6*6 = 4, i.e.,
	// universal caching improves latency by only ~25%.
	c := fig2Config(0.7)
	all := c.ExpectedHops()
	edge := c.EdgeOnlyExpectedHops()
	if math.Abs(all-3) > 0.5 {
		t.Errorf("ExpectedHops = %v, want ~3", all)
	}
	if math.Abs(edge-4) > 0.2 {
		t.Errorf("EdgeOnlyExpectedHops = %v, want ~4", edge)
	}
	improvement := (edge - all) / edge
	if improvement > 0.30 {
		t.Errorf("universal caching improvement = %v, paper argues ~25%%", improvement)
	}
}

func TestLevelFractionsCacheLargerThanUniverse(t *testing.T) {
	c := Config{Arity: 2, Levels: 4, SlotsPerNode: 1000, Objects: 500, Alpha: 1}
	fr := c.LevelFractions()
	if math.Abs(fr[0]-1) > 1e-9 {
		t.Errorf("leaf share = %v, want 1 when the leaf cache holds the universe", fr[0])
	}
	for l := 1; l < 4; l++ {
		if fr[l] > 1e-9 {
			t.Errorf("level %d share = %v, want 0", l+1, fr[l])
		}
	}
}

func TestOptimalBudgetSplitPrefersLeaves(t *testing.T) {
	// The paper: "the optimal solution under a Zipf workload involves
	// assigning a majority of the total caching budget to the leaves". At
	// alpha near 1 the exact optimum gives the leaves the largest share of
	// any level; for steeper tails the share is a strict majority.
	cfg := Config{Arity: 2, Levels: 6, Objects: 10000, Alpha: 0.9, SlotsPerNode: 0}
	total := 5 * 500 * 2 // budget comparable to the symmetric setting
	sp := OptimalBudgetSplit(cfg, total)
	for l := 1; l < len(sp.BudgetShare); l++ {
		if sp.BudgetShare[l] > sp.BudgetShare[0] {
			t.Errorf("level %d share %v exceeds leaf share %v", l+1, sp.BudgetShare[l], sp.BudgetShare[0])
		}
	}
	steep := cfg
	steep.Alpha = 1.5
	if sp2 := OptimalBudgetSplit(steep, total); sp2.BudgetShare[0] < 0.5 {
		t.Errorf("alpha=1.5 leaf budget share = %v, want a majority", sp2.BudgetShare[0])
	}
	// Shares must be non-negative and sum to <= 1 (integer slack allowed).
	sum := 0.0
	for _, s := range sp.BudgetShare {
		if s < 0 {
			t.Fatalf("negative budget share: %v", sp.BudgetShare)
		}
		sum += s
	}
	if sum > 1+1e-9 {
		t.Fatalf("budget shares sum to %v > 1", sum)
	}
}

func TestOptimalBudgetSplitBeatsSymmetric(t *testing.T) {
	// With the same total budget, the optimal split cannot be worse than
	// the equal-per-node allocation.
	sym := fig2Config(0.9)
	totalBudget := 0
	for l := 1; l < sym.Levels; l++ {
		totalBudget += sym.SlotsPerNode * sym.NodesAtLevel(l)
	}
	opt := OptimalBudgetSplit(sym, totalBudget)
	if opt.ExpectedHops > sym.ExpectedHops()+1e-9 {
		t.Errorf("optimal split hops %v worse than symmetric %v", opt.ExpectedHops, sym.ExpectedHops())
	}
}

func TestOptimalBudgetSplitZeroBudget(t *testing.T) {
	cfg := Config{Arity: 2, Levels: 4, Objects: 100, Alpha: 1}
	sp := OptimalBudgetSplit(cfg, 0)
	for _, c := range sp.PerNodeSlots {
		if c != 0 {
			t.Fatalf("zero budget allocated slots: %v", sp.PerNodeSlots)
		}
	}
	if sp.ExpectedHops != 4 {
		t.Errorf("zero-budget hops = %v, want 4 (all at origin)", sp.ExpectedHops)
	}
}

func TestOptimalBudgetSplitHugeBudget(t *testing.T) {
	cfg := Config{Arity: 2, Levels: 4, Objects: 50, Alpha: 1}
	sp := OptimalBudgetSplit(cfg, 1<<20)
	// With unconstrained budget everything is served at the leaves.
	if math.Abs(sp.LevelFractions[0]-1) > 1e-9 {
		t.Errorf("huge budget leaf fraction = %v, want 1", sp.LevelFractions[0])
	}
	if math.Abs(sp.ExpectedHops-1) > 1e-9 {
		t.Errorf("huge budget hops = %v, want 1", sp.ExpectedHops)
	}
}

// Property: for any sane parameters, the split's level fractions form a
// probability vector, per-node slots are non-negative, and expected hops lie
// within [1, Levels].
func TestOptimalBudgetSplitInvariantsQuick(t *testing.T) {
	f := func(aRaw, lRaw, alphaRaw uint8, bRaw uint16) bool {
		cfg := Config{
			Arity:   int(aRaw%3) + 2,
			Levels:  int(lRaw%4) + 2,
			Objects: 300,
			Alpha:   float64(alphaRaw%20)/10 + 0.1,
		}
		sp := OptimalBudgetSplit(cfg, int(bRaw))
		sum := 0.0
		for _, f := range sp.LevelFractions {
			if f < -1e-12 {
				return false
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		for _, c := range sp.PerNodeSlots {
			if c < 0 {
				return false
			}
		}
		return sp.ExpectedHops >= 1-1e-9 && sp.ExpectedHops <= float64(cfg.Levels)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Cross-check the summation-by-parts identity the greedy relies on:
// E[hops] = L - sum_l F(s_l).
func TestExpectedHopsIdentity(t *testing.T) {
	cfg := fig2Config(1.1)
	dist := zipfian.New(cfg.Alpha, cfg.Objects)
	direct := cfg.ExpectedHops()
	viaIdentity := float64(cfg.Levels)
	for l := 1; l < cfg.Levels; l++ {
		hi := l * cfg.SlotsPerNode
		if hi > cfg.Objects {
			hi = cfg.Objects
		}
		viaIdentity -= dist.CDF(hi - 1)
	}
	if math.Abs(direct-viaIdentity) > 1e-9 {
		t.Errorf("identity mismatch: %v vs %v", direct, viaIdentity)
	}
}

func TestValidatePanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"arity":   {Arity: 1, Levels: 3, Objects: 10, Alpha: 1},
		"levels":  {Arity: 2, Levels: 1, Objects: 10, Alpha: 1},
		"objects": {Arity: 2, Levels: 3, Objects: 0, Alpha: 1},
		"slots":   {Arity: 2, Levels: 3, Objects: 10, SlotsPerNode: -1, Alpha: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid config accepted", name)
				}
			}()
			cfg.LevelFractions()
		}()
	}
}

func BenchmarkOptimalBudgetSplit(b *testing.B) {
	cfg := Config{Arity: 2, Levels: 6, Objects: 10000, Alpha: 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OptimalBudgetSplit(cfg, 5000)
	}
}
