// Package zipfian provides Zipf (power-law) distributions over object ranks:
// exact inverse-CDF sampling, probability queries, and parameter fitting.
//
// A Zipf distribution with exponent alpha over n ranks assigns rank i
// (1-based) probability proportional to 1/i^alpha. Request popularity in CDN
// and web workloads is well approximated by such distributions (Breslau et
// al., INFOCOM'99), which is the premise the paper builds on.
package zipfian

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Dist is a Zipf distribution over ranks 0..N-1 (rank 0 is the most popular).
// It samples by binary search over the cumulative weight table, which is
// exact for any alpha >= 0 (including alpha < 1, which the standard library
// rand.Zipf cannot express).
type Dist struct {
	alpha float64
	cum   []float64 // cum[i] = sum of weights of ranks 0..i, normalized to cum[n-1] == 1
}

// New returns a Zipf distribution with the given exponent over n ranks.
// alpha may be any non-negative value; alpha == 0 is the uniform
// distribution. New panics if n <= 0 or alpha < 0, as both indicate
// programmer error rather than recoverable conditions.
func New(alpha float64, n int) *Dist {
	if n <= 0 {
		panic("zipfian: non-positive rank count")
	}
	if alpha < 0 || math.IsNaN(alpha) {
		panic("zipfian: negative alpha")
	}
	cum := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cum[i] = sum
	}
	inv := 1 / sum
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1 // guard against rounding drift
	return &Dist{alpha: alpha, cum: cum}
}

// Alpha returns the distribution's exponent.
func (d *Dist) Alpha() float64 { return d.alpha }

// N returns the number of ranks.
func (d *Dist) N() int { return len(d.cum) }

// PMF returns the probability of rank i (0-based).
func (d *Dist) PMF(i int) float64 {
	if i < 0 || i >= len(d.cum) {
		return 0
	}
	if i == 0 {
		return d.cum[0]
	}
	return d.cum[i] - d.cum[i-1]
}

// CDF returns the probability of drawing a rank <= i.
func (d *Dist) CDF(i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= len(d.cum) {
		return 1
	}
	return d.cum[i]
}

// Sample draws a rank in [0, N) using r.
func (d *Dist) Sample(r *rand.Rand) int {
	u := r.Float64()
	// sort.SearchFloat64s returns the first index with cum[i] >= u.
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.cum) {
		i = len(d.cum) - 1
	}
	return i
}

// TopMass returns the total probability mass of the k most popular ranks.
func (d *Dist) TopMass(k int) float64 { return d.CDF(k - 1) }

// HarmonicPartial returns the generalized harmonic number
// H(n, alpha) = sum_{i=1..n} i^-alpha.
func HarmonicPartial(n int, alpha float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += math.Pow(float64(i), -alpha)
	}
	return sum
}

// ErrInsufficientData is returned by the fitting routines when the input has
// fewer than two non-zero ranks, which cannot constrain the exponent.
var ErrInsufficientData = errors.New("zipfian: insufficient data to fit")

// FitRankFrequency estimates the Zipf exponent from per-object request
// counts using least-squares regression of log(frequency) on log(rank),
// the standard "straight line on a log-log plot" fit the paper uses for
// Table 2. counts need not be sorted. The returned r2 is the coefficient of
// determination of the regression (1 means a perfect power law).
func FitRankFrequency(counts []int64) (alpha, r2 float64, err error) {
	ranked := nonZeroDescending(counts)
	if len(ranked) < 2 {
		return 0, 0, ErrInsufficientData
	}
	var sx, sy, sxx, sxy, syy float64
	n := float64(len(ranked))
	for i, c := range ranked {
		x := math.Log(float64(i + 1))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, ErrInsufficientData
	}
	slope := (n*sxy - sx*sy) / den
	alpha = -slope
	// r2 = squared correlation coefficient.
	cd := (n*sxx - sx*sx) * (n*syy - sy*sy)
	if cd <= 0 {
		return alpha, 1, nil // all y equal: degenerate but consistent
	}
	r := (n*sxy - sx*sy) / math.Sqrt(cd)
	return alpha, r * r, nil
}

// FitMLE estimates the Zipf exponent from per-object request counts by
// maximizing the discrete Zipf log-likelihood over alpha in [0, maxAlpha]
// using golden-section search. It is more statistically efficient than the
// regression fit for heavy tails, at the cost of more computation.
func FitMLE(counts []int64) (alpha float64, err error) {
	ranked := nonZeroDescending(counts)
	if len(ranked) < 2 {
		return 0, ErrInsufficientData
	}
	n := len(ranked)
	var total float64
	var sumCLogRank float64
	for i, c := range ranked {
		total += float64(c)
		sumCLogRank += float64(c) * math.Log(float64(i+1))
	}
	// Log-likelihood (up to a constant): -alpha * sum(c_i log i) - total * log H(n, alpha).
	ll := func(a float64) float64 {
		return -a*sumCLogRank - total*math.Log(HarmonicPartial(n, a))
	}
	const maxAlpha = 8.0
	lo, hi := 0.0, maxAlpha
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := ll(x1), ll(x2)
	for hi-lo > 1e-7 {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = ll(x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = ll(x1)
		}
	}
	return (lo + hi) / 2, nil
}

// RankCounts aggregates a stream of rank observations into a count vector of
// length n, suitable for the fitting routines.
func RankCounts(ranks []int, n int) []int64 {
	counts := make([]int64, n)
	for _, r := range ranks {
		if r >= 0 && r < n {
			counts[r]++
		}
	}
	return counts
}

func nonZeroDescending(counts []int64) []int64 {
	out := make([]int64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
