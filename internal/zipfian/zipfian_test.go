package zipfian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		alpha float64
		n     int
	}{
		{"zero n", 1.0, 0},
		{"negative n", 1.0, -3},
		{"negative alpha", -0.1, 10},
		{"NaN alpha", math.NaN(), 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v, %d) did not panic", tc.alpha, tc.n)
				}
			}()
			New(tc.alpha, tc.n)
		})
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.3, 0.7, 1.0, 1.5, 2.5} {
		d := New(alpha, 1000)
		sum := 0.0
		for i := 0; i < d.N(); i++ {
			sum += d.PMF(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha=%v: PMF sums to %v, want 1", alpha, sum)
		}
	}
}

func TestPMFMonotoneDecreasing(t *testing.T) {
	d := New(0.9, 500)
	for i := 1; i < d.N(); i++ {
		if d.PMF(i) > d.PMF(i-1)+1e-15 {
			t.Fatalf("PMF(%d)=%v > PMF(%d)=%v", i, d.PMF(i), i-1, d.PMF(i-1))
		}
	}
}

func TestUniformWhenAlphaZero(t *testing.T) {
	d := New(0, 10)
	for i := 0; i < 10; i++ {
		if math.Abs(d.PMF(i)-0.1) > 1e-12 {
			t.Fatalf("alpha=0 PMF(%d) = %v, want 0.1", i, d.PMF(i))
		}
	}
}

func TestCDFBoundsAndEdges(t *testing.T) {
	d := New(1.1, 100)
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
	if got := d.CDF(99); got != 1 {
		t.Errorf("CDF(99) = %v, want 1", got)
	}
	if got := d.CDF(1000); got != 1 {
		t.Errorf("CDF(1000) = %v, want 1", got)
	}
	if got := d.PMF(-1); got != 0 {
		t.Errorf("PMF(-1) = %v, want 0", got)
	}
	if got := d.PMF(100); got != 0 {
		t.Errorf("PMF(100) = %v, want 0", got)
	}
}

func TestSampleMatchesPMF(t *testing.T) {
	const n = 50
	const draws = 200000
	d := New(0.8, n)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[d.Sample(r)]++
	}
	for i := 0; i < n; i++ {
		want := d.PMF(i)
		got := float64(counts[i]) / draws
		// Tolerate 4-sigma binomial noise plus a small absolute floor.
		tol := 4*math.Sqrt(want*(1-want)/draws) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("rank %d: empirical %v, want %v (tol %v)", i, got, want, tol)
		}
	}
}

func TestSampleDeterministicPerSeed(t *testing.T) {
	d := New(1.0, 100)
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		if x, y := d.Sample(a), d.Sample(b); x != y {
			t.Fatalf("draw %d: %d != %d with identical seeds", i, x, y)
		}
	}
}

func TestTopMass(t *testing.T) {
	d := New(1.0, 100)
	if got, want := d.TopMass(100), 1.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("TopMass(100) = %v, want 1", got)
	}
	if got := d.TopMass(1); math.Abs(got-d.PMF(0)) > 1e-12 {
		t.Errorf("TopMass(1) = %v, want PMF(0)=%v", got, d.PMF(0))
	}
	if d.TopMass(10) <= d.TopMass(5) {
		t.Errorf("TopMass not increasing: %v <= %v", d.TopMass(10), d.TopMass(5))
	}
}

func TestHarmonicPartial(t *testing.T) {
	if got := HarmonicPartial(1, 2.0); got != 1 {
		t.Errorf("H(1,2) = %v, want 1", got)
	}
	// H(3, 1) = 1 + 1/2 + 1/3
	if got, want := HarmonicPartial(3, 1.0), 1.0+0.5+1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("H(3,1) = %v, want %v", got, want)
	}
	// alpha = 0 gives n.
	if got := HarmonicPartial(7, 0); got != 7 {
		t.Errorf("H(7,0) = %v, want 7", got)
	}
}

func TestFitRankFrequencyRecoversAlpha(t *testing.T) {
	for _, alpha := range []float64{0.7, 0.92, 0.99, 1.04, 1.3} {
		const n = 5000
		const draws = 400000
		d := New(alpha, n)
		r := rand.New(rand.NewSource(7))
		counts := make([]int64, n)
		for i := 0; i < draws; i++ {
			counts[d.Sample(r)]++
		}
		got, r2, err := FitRankFrequency(counts)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		// Regression over a finite sample underestimates the tail; accept 15%.
		if math.Abs(got-alpha)/alpha > 0.15 {
			t.Errorf("alpha=%v: fitted %v (r2=%v)", alpha, got, r2)
		}
		if r2 < 0.8 {
			t.Errorf("alpha=%v: weak fit r2=%v", alpha, r2)
		}
	}
}

func TestFitMLERecoversAlpha(t *testing.T) {
	for _, alpha := range []float64{0.7, 1.0, 1.4} {
		const n = 2000
		const draws = 300000
		d := New(alpha, n)
		r := rand.New(rand.NewSource(11))
		counts := make([]int64, n)
		for i := 0; i < draws; i++ {
			counts[d.Sample(r)]++
		}
		got, err := FitMLE(counts)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		if math.Abs(got-alpha) > 0.08 {
			t.Errorf("alpha=%v: MLE fitted %v", alpha, got)
		}
	}
}

func TestFitInsufficientData(t *testing.T) {
	if _, _, err := FitRankFrequency(nil); err != ErrInsufficientData {
		t.Errorf("FitRankFrequency(nil) err = %v, want ErrInsufficientData", err)
	}
	if _, _, err := FitRankFrequency([]int64{5}); err != ErrInsufficientData {
		t.Errorf("one rank err = %v, want ErrInsufficientData", err)
	}
	if _, err := FitMLE([]int64{0, 0, 3}); err != ErrInsufficientData {
		t.Errorf("FitMLE single rank err = %v, want ErrInsufficientData", err)
	}
}

func TestRankCounts(t *testing.T) {
	got := RankCounts([]int{0, 0, 2, 5, -1, 99}, 4)
	want := []int64{2, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankCounts = %v, want %v", got, want)
		}
	}
}

// Property: CDF is non-decreasing and PMF(i) == CDF(i) - CDF(i-1) for any
// (alpha, n) drawn by testing/quick.
func TestCDFPMFConsistencyQuick(t *testing.T) {
	f := func(a uint8, nn uint16) bool {
		alpha := float64(a%30) / 10 // 0.0 .. 2.9
		n := int(nn%500) + 2
		d := New(alpha, n)
		prev := 0.0
		for i := 0; i < n; i++ {
			c := d.CDF(i)
			if c < prev-1e-12 {
				return false
			}
			if math.Abs(d.PMF(i)-(c-prev)) > 1e-9 {
				return false
			}
			prev = c
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: samples are always within [0, N).
func TestSampleRangeQuick(t *testing.T) {
	f := func(seed int64, nn uint16) bool {
		n := int(nn%200) + 1
		d := New(1.1, n)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if s := d.Sample(r); s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSample(b *testing.B) {
	d := New(1.0, 100000)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(r)
	}
}

func BenchmarkFitRankFrequency(b *testing.B) {
	d := New(1.0, 10000)
	r := rand.New(rand.NewSource(1))
	counts := make([]int64, 10000)
	for i := 0; i < 500000; i++ {
		counts[d.Sample(r)]++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := FitRankFrequency(counts); err != nil {
			b.Fatal(err)
		}
	}
}
