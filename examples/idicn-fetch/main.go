// Idicn-fetch: the full idICN pipeline (paper §6, Figure 11) on loopback —
// publish signed content at an origin, resolve its self-certifying name,
// fetch through an edge proxy that authenticates before caching, then watch
// the mobility layer survive a server move mid-deployment.
//
//	go run ./examples/idicn-fetch
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"idicn/internal/httpx"
	"idicn/internal/idicn/mobility"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resolver"
)

func main() {
	ctx := context.Background()

	// 1. The name resolution system (a consortium-operated service in the
	// paper; one loopback server here).
	registry := resolver.NewRegistry()
	resolverURL := serve(resolver.NewServer(registry))
	resolverClient := resolver.NewClient(resolverURL, nil)
	fmt.Println("resolver at ", resolverURL)

	// 2. A content provider with a fresh Ed25519 principal; its public-key
	// hash is the P of every name it publishes.
	publisher, err := names.NewPrincipal(nil)
	if err != nil {
		log.Fatal(err)
	}
	var org *origin.Server
	originURL := serve(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { org.ServeHTTP(w, r) }))
	org = origin.New(publisher, resolverClient, originURL)
	n, err := org.Publish(ctx, "manifesto", "text/plain",
		[]byte("Names bind content to publishers, not to hosts."))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("published  ", n.DNS())

	// 3. An edge proxy: clients reach it via WPAD/PAC; it verifies every
	// object against its name before caching.
	px := proxy.New(resolverClient)
	proxyURL := serve(px)
	fmt.Println("edge proxy ", proxyURL)

	for i := 1; i <= 2; i++ {
		req, _ := http.NewRequest(http.MethodGet, proxyURL+"/", nil)
		req.Host = n.DNS()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close() // body fully read; nothing left to lose
		fmt.Printf("fetch %d (%s): %q\n", i, resp.Header.Get("X-Cache"), body)
	}
	st := px.Stats()
	fmt.Printf("proxy stats: %d hit, %d miss, %d rejected\n\n", st.Hits, st.Misses, st.Rejected)

	// 4. Mobility: a mobile host publishes, moves to a new address, and a
	// range-resuming client still completes its fetch.
	host := mobility.NewHost(publisher, resolverClient)
	if err := host.Start(); err != nil {
		log.Fatal(err)
	}
	defer host.Close()
	mn, err := host.Publish(ctx, "travelogue", "text/plain", []byte("posted from the road"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mobile host at", host.BaseURL())
	if err := host.Move(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("moved to      ", host.BaseURL())
	fetcher := &mobility.Fetcher{Resolver: resolverClient}
	body, err := fetcher.Fetch(ctx, mn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched after move: %q (verified against %s)\n", body, mn)
}

func serve(h http.Handler) string {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go httpx.Serve(lis, h) //icn:oneshot demo accept loop; lives until the process exits
	return "http://" + lis.Addr().String()
}
