// Legacy-browser: the zero-client-change path through idICN. An unmodified
// host resolves an idICN name through ordinary DNS (answered by the
// authoritative bridge for idicn.org), lands at the edge proxy, and gets
// verified content — no PAC, no new software, exactly the backward
// compatibility §6.1 promises. A second, WPAD-capable client then does the
// same through PAC discovery with client-side verification.
//
//	go run ./examples/legacy-browser
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"idicn/internal/httpx"
	"idicn/internal/idicn/client"
	"idicn/internal/idicn/dnsbridge"
	"idicn/internal/idicn/names"
	"idicn/internal/idicn/origin"
	"idicn/internal/idicn/proxy"
	"idicn/internal/idicn/resolver"
)

func main() {
	ctx := context.Background()

	// Deployment: resolver, origin, edge proxy, DNS bridge.
	registry := resolver.NewRegistry()
	resolverURL := serve(resolver.NewServer(registry))
	resolverClient := resolver.NewClient(resolverURL, nil)

	publisher, err := names.NewPrincipal(nil)
	if err != nil {
		log.Fatal(err)
	}
	var org *origin.Server
	originURL := serve(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { org.ServeHTTP(w, r) }))
	org = origin.New(publisher, resolverClient, originURL)

	px := proxy.New(resolverClient)
	proxyURL := serve(px)
	proxyHost, proxyPort, _ := strings.Cut(strings.TrimPrefix(proxyURL, "http://"), ":")

	dns, err := dnsbridge.NewServer("127.0.0.1:0", names.Domain, []string{proxyHost}, 60)
	if err != nil {
		log.Fatal(err)
	}
	defer dns.Close()
	fmt.Println("dns bridge at", dns.Addr(), "— authoritative for", names.Domain)

	n, err := org.Publish(ctx, "frontpage", "text/plain", []byte("served to a legacy browser"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("published   ", n.DNS())

	// --- Legacy path: plain DNS + plain HTTP, nothing idICN-aware. ---
	rcode, addrs, err := dnsbridge.Lookup(dns.Addr(), n.DNS(), 2*time.Second)
	if err != nil || rcode != dnsbridge.RcodeNoError || len(addrs) == 0 {
		log.Fatalf("DNS lookup failed: rcode=%d err=%v", rcode, err)
	}
	fmt.Printf("legacy DNS resolved %s -> %s\n", n.DNS(), addrs[0])

	// The browser connects to the resolved address (which is the proxy) and
	// sends an ordinary GET with the name in the Host header.
	req, _ := http.NewRequest(http.MethodGet, "http://"+addrs[0].String()+":"+proxyPort+"/", nil)
	req.Host = n.DNS()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close() // body fully read; nothing left to lose
	fmt.Printf("legacy fetch (%s): %q\n", resp.Header.Get("X-Cache"), body)

	// --- WPAD path: PAC discovery plus client-side verification. ---
	pac, err := client.DiscoverPAC(ctx, nil, client.NetworkConfig{
		WPADCandidates: []string{proxyURL + "/wpad.dat"},
	})
	if err != nil {
		log.Fatal(err)
	}
	c := &client.Client{PAC: pac, VerifyLocally: true}
	verified, err := c.Fetch(ctx, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WPAD client fetch (verified locally): %q\n", verified)
}

func serve(h http.Handler) string {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go httpx.Serve(lis, h) //icn:oneshot demo accept loop; lives until the process exits
	return "http://" + lis.Addr().String()
}
