// Cdntraces: regenerate the paper's workload characterization (§2.2) —
// synthesize the three CDN vantage-point logs, fit their Zipf exponents
// (Table 2), and print a sampled rank/frequency series (Figure 1).
//
//	go run ./examples/cdntraces
package main

import (
	"fmt"
	"log"

	"idicn/internal/trace"
	"idicn/internal/zipfian"
)

func main() {
	const scale = 0.02 // 2% of the paper's request volumes: runs in seconds

	fmt.Printf("%-8s %10s %10s %12s %10s %8s\n",
		"location", "requests", "objects", "alpha(fit)", "alpha(mle)", "r^2")
	for _, model := range []trace.CDNModel{trace.US(scale), trace.Europe(scale), trace.Asia(scale)} {
		records := model.Generate()
		counts := trace.ObjectCounts(records)
		alphaFit, r2, err := zipfian.FitRankFrequency(counts)
		if err != nil {
			log.Fatal(err)
		}
		alphaMLE, err := zipfian.FitMLE(counts)
		if err != nil {
			log.Fatal(err)
		}
		distinct := 0
		for _, c := range counts {
			if c > 0 {
				distinct++
			}
		}
		fmt.Printf("%-8s %10d %10d %12.2f %10.2f %8.3f\n",
			model.Name, len(records), distinct, alphaFit, alphaMLE, r2)
	}
	fmt.Println("\npaper's Table 2: US 0.99, Europe 0.92, Asia 1.04")

	// Figure 1's log-log series for the Asia vantage point, decimated.
	asia := trace.Asia(scale).Generate()
	rf := trace.RankFrequency(asia)
	fmt.Println("\nAsia rank -> request count (log-log straight line = Zipf):")
	for rank := 1; rank <= len(rf); rank *= 4 {
		fmt.Printf("  rank %6d: %8d requests\n", rank, rf[rank-1])
	}
}
