// Cachesweep: reproduce the paper's §5 sensitivity analysis in miniature —
// sweep the Zipf exponent, the cache budget, and the spatial skew, printing
// the ICN-NR over EDGE gap at each point, plus the §2.2 analytical tree
// model and optimal budget split.
//
//	go run ./examples/cachesweep
package main

import (
	"fmt"
	"log"

	"idicn/internal/experiments"
	"idicn/internal/treemodel"
)

func main() {
	// A small, warm configuration that runs in seconds: the Abilene
	// topology with shallow trees (see EXPERIMENTS.md on warmth).
	p := experiments.DefaultParams(0.02)
	p.Depth = 3
	p.Objects = 2000
	p.SweepTopology = "Abilene"

	fmt.Println("ICN-NR over EDGE gap (percentage points), Abilene:")

	points, err := experiments.Figure8a(p, []float64{0.4, 0.7, 1.0, 1.3, 1.6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nby Zipf alpha:\n")
	fmt.Print(experiments.FormatSweep("alpha", points))

	points, err = experiments.Figure8b(p, []float64{0.001, 0.01, 0.05, 0.2, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nby per-router cache budget:\n")
	fmt.Print(experiments.FormatSweep("budget%", points))

	points, err = experiments.Figure8c(p, []float64{0, 0.5, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nby spatial skew:\n")
	fmt.Print(experiments.FormatSweep("skew", points))

	// The analytical model behind Figure 2: where requests are served on a
	// 6-level binary tree under optimal placement.
	fmt.Println("\nanalytical tree model (Figure 2):")
	fmt.Print(experiments.FormatFigure2(experiments.Figure2()))

	// And the budget-split extension: the optimum concentrates capacity at
	// the leaves.
	cfg := treemodel.Config{Arity: 2, Levels: 6, Objects: 10000, Alpha: 1.0}
	split := treemodel.OptimalBudgetSplit(cfg, 5000)
	fmt.Println("\noptimal budget split across levels (leaf first):")
	for i, share := range split.BudgetShare {
		fmt.Printf("  level %d: %4.1f%% of budget (%d slots/node)\n", i+1, share*100, split.PerNodeSlots[i])
	}
	fmt.Printf("  expected hops: %.2f\n", split.ExpectedHops)
}
