// Adhoc-share: the paper's §6.2 airplane scenario — no DHCP, no DNS, no
// upstream network. Alice allocates a link-local address, shares her browser
// cache over the ad hoc link, and Bob resolves cnn.com via the mDNS-style
// fallback and fetches the page from her machine. The link here is a real
// UDP transport on loopback.
//
//	go run ./examples/adhoc-share
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"idicn/internal/httpx"
	"idicn/internal/idicn/adhoc"
)

func main() {
	// Two devices joined to the same link (UDP sockets standing in for the
	// multicast group).
	aliceLink, err := adhoc.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer aliceLink.Close()
	bobLink, err := adhoc.NewUDPTransport("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer bobLink.Close()
	must(aliceLink.AddPeer(bobLink.Addr()))
	must(bobLink.AddPeer(aliceLink.Addr()))

	// Link-local address autoconfiguration (RFC 3927 style).
	aliceAddr, err := adhoc.AllocateLinkLocal(aliceLink, rand.New(rand.NewSource(1)), 20*time.Millisecond)
	must(err)
	bobAddr, err := adhoc.AllocateLinkLocal(bobLink, rand.New(rand.NewSource(2)), 20*time.Millisecond)
	must(err)
	fmt.Println("alice:", aliceAddr)
	fmt.Println("bob:  ", bobAddr)

	// Alice's browser cache has the CNN headlines; she shares it.
	cache := adhoc.NewBrowserCache()
	cache.Put("cnn.com", "/", adhoc.CacheEntry{
		ContentType: "text/html",
		Body:        []byte("<h1>Headlines</h1><p>Cached before takeoff.</p>"),
	})
	responder := adhoc.NewResponder(aliceLink, aliceAddr)
	defer responder.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	shareURL := "http://" + lis.Addr().String()
	share := adhoc.NewShareProxy(cache, responder, shareURL)
	go httpx.Serve(lis, share) //icn:oneshot demo accept loop; lives until the process exits
	must(share.PublishAll())
	fmt.Println("alice shares", cache.Hosts(), "at", shareURL)

	// Bob types cnn.com; with no DNS server configured, his stack falls
	// back to the ad hoc link.
	querier := adhoc.NewQuerier(bobLink, bobAddr, rand.New(rand.NewSource(3)))
	location, err := querier.Query("cnn.com", time.Second)
	must(err)
	fmt.Println("bob resolved cnn.com ->", location)

	req, _ := http.NewRequest(http.MethodGet, location+"/", nil)
	req.Host = "cnn.com"
	resp, err := http.DefaultClient.Do(req)
	must(err)
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("bob fetched: %s\n", body)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
