// Quickstart: build a network, generate a Zipf workload, and compare the
// paper's five caching designs on the three evaluation metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

func main() {
	// The Abilene backbone with a binary, depth-3 access tree per PoP.
	network := topo.NewNetwork(topo.Abilene(), 2, 3)
	fmt.Printf("network: %d PoPs, %d routers, %d leaves\n",
		network.PoPs(), network.NodeCount(), network.PoPs()*network.LeavesPerTree())

	// A Zipf(1.04) workload (the paper's Asia trace fit): 200k requests over
	// 2,000 objects, arriving at leaves proportional to metro population.
	const objects = 2000
	weights := network.Topo.PopulationWeights()
	requests := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests:   200_000,
		Objects:    objects,
		Alpha:      1.04,
		PoPWeights: weights,
		Leaves:     network.LeavesPerTree(),
		Seed:       1,
	})

	// Each object's origin server is a PoP chosen proportional to population.
	origins := trace.OriginAssignment(objects, weights, true, 2)

	base := sim.Config{
		Network:        network,
		Objects:        objects,
		Origins:        origins,
		BudgetFraction: 0.05, // each router can cache 5% of the universe
		BudgetPolicy:   sim.BudgetProportional,
	}

	// Run the five representative designs against a shared no-cache baseline.
	results, err := sim.Compare(base, sim.BaselineDesigns(), requests, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-12s %10s %12s %12s\n", "design", "latency%", "congestion%", "origin%")
	for _, r := range results {
		fmt.Printf("%-12s %10.1f %12.1f %12.1f\n",
			r.Design.Name, r.Improvement.Latency, r.Improvement.Congestion, r.Improvement.OriginLoad)
	}

	// The paper's headline comparison.
	byName := map[string]sim.Improvement{}
	for _, r := range results {
		byName[r.Design.Name] = r.Improvement
	}
	gap := sim.Gap(byName["ICN-NR"], byName["EDGE"])
	fmt.Printf("\nICN-NR over EDGE: %.1f%% latency, %.1f%% congestion, %.1f%% origin load\n",
		gap.Latency, gap.Congestion, gap.OriginLoad)
	fmt.Println("(the paper's argument: this gap is small enough that edge caching suffices)")
}
