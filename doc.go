// Package idicn is a from-scratch reproduction of "Less Pain, Most of the
// Gain: Incrementally Deployable ICN" (Fayazbakhsh et al., SIGCOMM 2013).
//
// The repository has two halves, mirroring the paper:
//
//   - A request-level caching simulator (internal/sim with substrates
//     internal/topo, internal/trace, internal/cache, internal/zipfian,
//     internal/treemodel) that evaluates the ICN design space — cache
//     placement x request routing — on query latency, link congestion, and
//     origin load, and regenerates every table and figure of the paper's
//     evaluation (internal/experiments, cmd/icnsim, bench_test.go).
//
//   - idICN, the paper's incrementally deployable application-layer ICN
//     (internal/idicn/...): self-certifying names, a name resolution
//     system, a signing origin/reverse proxy, an authenticating edge proxy
//     with WPAD/PAC auto-configuration, Zeroconf-style ad hoc content
//     sharing, and mobility via dynamic re-registration plus HTTP range
//     resumption (cmd/idicnd).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-versus-measured results.
package idicn
