// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation. Each benchmark regenerates its artifact at a laptop-friendly
// scale and logs the resulting rows (visible with `go test -bench . -v` or
// in -benchmem output via b.Log); EXPERIMENTS.md records a full
// paper-versus-measured comparison produced with cmd/icnsim at larger
// scale.
//
// Reported ns/op is the cost of regenerating the whole artifact once.
package idicn_test

import (
	"fmt"
	"reflect"
	"testing"

	"idicn/internal/experiments"
	"idicn/internal/sim"
	"idicn/internal/topo"
	"idicn/internal/trace"
)

// benchScale keeps every artifact regeneration under ~10s on one core.
const benchScale = 0.02

func benchParams() experiments.Params {
	return experiments.DefaultParams(benchScale)
}

// warmParams is the high-warmth configuration (shallow trees, small
// universe, small topology) in which the paper's capacity-driven trends
// (Figure 8(b) non-monotonicity, EDGE-Norm gains) manifest at bench scale;
// see EXPERIMENTS.md.
func warmParams() experiments.Params {
	p := benchParams()
	p.Depth = 3
	p.Objects = 2000
	p.SweepTopology = "Abilene"
	return p
}

func BenchmarkTable2ZipfFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable2(rows))
		}
	}
}

func BenchmarkFig1RankFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Figure1Series(benchScale, 1000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure1(series, 8))
		}
	}
}

func BenchmarkFig2TreeModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure2()
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure2(rows))
		}
	}
}

func BenchmarkFig6Baseline(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure(rows))
		}
	}
}

func BenchmarkFig7Uniform(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure(rows))
		}
	}
}

func BenchmarkTable3SynthValidation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable3(rows))
		}
	}
}

func BenchmarkFig8aAlphaSweep(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure8a(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatSweep("alpha", pts))
		}
	}
}

func BenchmarkFig8bBudgetSweep(b *testing.B) {
	p := warmParams()
	p.Objects = 200 // high warmth: the regime where the paper's peak shows
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure8b(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatSweep("budget%", pts))
		}
	}
}

func BenchmarkFig8cSkewSweep(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure8c(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatSweep("skew", pts))
		}
	}
}

func BenchmarkTable4Arity(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatTable4(rows))
		}
	}
}

func BenchmarkFig9BestCase(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		steps, err := experiments.Figure9(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure9(steps))
		}
	}
}

func BenchmarkFig10BridgeGap(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure10(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure10(rows))
		}
	}
}

func BenchmarkSensLatencyModels(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SensitivityLatencyModels(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatNamedGaps("model", rows))
		}
	}
}

func BenchmarkSensCapacity(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SensitivityCapacity(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatNamedGaps("capacity", rows))
		}
	}
}

func BenchmarkSensObjectSizes(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SensitivityObjectSizes(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatNamedGaps("sizes", rows))
		}
	}
}

func BenchmarkAblationUniverse(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationObjectUniverse(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatAblation(rows))
		}
	}
}

// BenchmarkSimulatorThroughput measures raw request-simulation rates for
// the two extreme designs, in requests (not artifacts) per op.
func BenchmarkSimulatorThroughput(b *testing.B) {
	net := topo.NewNetwork(topo.Abilene(), 2, 5)
	const objects = 5000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: 200000, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
	})
	base := sim.Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: sim.BudgetProportional,
	}
	for _, d := range []sim.Design{sim.EDGE, sim.ICNSP, sim.ICNNR} {
		b.Run(d.Name, func(b *testing.B) {
			cfg := d.Apply(base)
			for i := 0; i < b.N; i++ {
				e, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				e.Run(reqs)
			}
			b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkFigure6Parallel regenerates Figure 6 (8 topologies × 6 runs)
// through the worker pool at several worker counts. On a multi-core machine
// workers=4 should be ≥2× faster than workers=1; on one core the sub-
// benchmarks coincide. Each sub-benchmark also re-checks that the rows are
// identical to the sequential run — parallelism must not change a single
// result.
func BenchmarkFigure6Parallel(b *testing.B) {
	p := benchParams()
	p.Workers = 1
	want, err := experiments.Figure6(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pw := p
			pw.Workers = workers
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Figure6(pw)
				if err != nil {
					b.Fatal(err)
				}
				if !reflect.DeepEqual(rows, want) {
					b.Fatalf("workers=%d produced different rows than workers=1", workers)
				}
			}
		})
	}
}

// BenchmarkShardedStream runs one sharded streaming simulation (sim.RunStream,
// one shard per PoP) over a fixed 200k-request EDGE workload at several worker
// counts, reporting end-to-end req/s. Every sub-benchmark re-checks that its
// merged Result is bit-identical to the Workers=1 run — the epoch-synchronized
// exchange must make worker count unobservable in the output.
func BenchmarkShardedStream(b *testing.B) {
	net := topo.NewNetwork(topo.ATT(), 2, 4)
	const objects = 10000
	const requests = 200000
	weights := net.Topo.PopulationWeights()
	origins := trace.OriginAssignment(objects, weights, true, 3)
	reqs := trace.NewSyntheticRequests(trace.StreamConfig{
		Requests: requests, Objects: objects, Alpha: 1.04,
		PoPWeights: weights, Leaves: net.LeavesPerTree(), Seed: 7,
		TemporalLocality: 0.7,
	})
	cfg := sim.EDGE.Apply(sim.Config{
		Network: net, Objects: objects, Origins: origins,
		BudgetFraction: 0.05, BudgetPolicy: sim.BudgetProportional,
	})
	want, err := sim.RunStream(cfg, trace.Requests(reqs), sim.StreamOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := sim.StreamOptions{Workers: workers}
			for i := 0; i < b.N; i++ {
				got, err := sim.RunStream(cfg, trace.Requests(reqs), opt)
				if err != nil {
					b.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					b.Fatalf("workers=%d result differs from workers=1", workers)
				}
			}
			b.ReportMetric(float64(requests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkFig6TraceLike regenerates Figure 6 under the trace-like stream
// (temporal locality 0.7), the configuration that recovers the paper's
// reported magnitudes (EXPERIMENTS.md).
func BenchmarkFig6TraceLike(b *testing.B) {
	p := benchParams()
	p.TemporalLocality = 0.7
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFigure(rows))
		}
	}
}

// BenchmarkAblationLocality regenerates the reproduction's central
// calibration sweep: NR-over-EDGE gap vs stream temporal locality.
func BenchmarkAblationLocality(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationTemporalLocality(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatSweep("locality", pts))
		}
	}
}

// BenchmarkDepthProfile regenerates the simulated Figure 2 counterpart.
func BenchmarkDepthProfile(b *testing.B) {
	p := benchParams()
	p.TemporalLocality = 0.7
	for i := 0; i < b.N; i++ {
		profiles, analytic, err := experiments.ServeDepthProfile(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatDepthProfile(profiles, analytic))
		}
	}
}

// BenchmarkFloodProtection regenerates the §7 flood-absorption comparison.
func BenchmarkFloodProtection(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.FloodProtection(p, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatFlood(rows))
		}
	}
}

// BenchmarkIncrementalDeployment regenerates the §4.3 deployment ablation.
func BenchmarkIncrementalDeployment(b *testing.B) {
	p := warmParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationIncrementalDeployment(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.FormatDeployment(rows))
		}
	}
}
