module idicn

go 1.24
